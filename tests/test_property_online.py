"""Property-based tests (hypothesis) for the online runtimes.

Workloads are drawn by seed: a (topology, seed, count, rate) tuple fully
determines a Poisson arrival stream, so determinism properties can be
stated as "same tuple, same result".  The invariants under test back the
PR's zero-distortion claims:

* the online runtime is a pure function of its seeded inputs;
* no transaction ever commits before its release;
* the resilient runtime on the empty fault plan reproduces
  :func:`repro.online.run_online` field by field;
* on repairable plans (no crashes, no permanent failures) the resilient
  runtime commits everything and the sanitizer stays silent.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import random_fault_plan
from repro.network import clique, grid, line
from repro.online import poisson_workload, run_online, run_resilient
from repro.sim import InvariantSanitizer
from repro.workloads import root_rng

_NETS = {"clique": clique(12), "grid": grid(4), "line": line(9)}


@st.composite
def workloads(draw):
    net = _NETS[draw(st.sampled_from(sorted(_NETS)))]
    seed = draw(st.integers(min_value=0, max_value=2**20))
    count = draw(st.integers(min_value=2, max_value=min(12, net.n)))
    rate = draw(st.sampled_from([0.5, 1.0, 2.0]))
    return poisson_workload(net, w=max(3, count // 2), k=2, rate=rate,
                            count=count, rng=root_rng(seed))


@given(workloads())
@settings(max_examples=25, deadline=None)
def test_same_seed_same_result(wl):
    a, b = run_online(wl), run_online(wl)
    assert a.schedule.commit_times == b.schedule.commit_times
    assert a.release == b.release
    assert a.response_times == b.response_times


@given(workloads())
@settings(max_examples=25, deadline=None)
def test_commit_never_precedes_release(wl):
    res = run_online(wl)
    for tid, ct in res.schedule.commit_times.items():
        assert ct >= wl.release_of(tid)


@given(workloads())
@settings(max_examples=25, deadline=None)
def test_resilient_empty_plan_matches_run_online(wl):
    healthy = run_online(wl)
    res = run_resilient(wl)
    assert res.schedule is not None
    assert res.schedule.commit_times == healthy.schedule.commit_times
    assert res.release == healthy.release
    assert res.makespan == healthy.makespan
    assert res.response_times == healthy.response_times
    assert res.report.retries == res.report.reroutes == 0


@given(workloads(), st.integers(min_value=0, max_value=2**20),
       st.sampled_from([0.5, 1.0, 2.0]))
@settings(max_examples=15, deadline=None)
def test_repairable_plan_commits_all_with_silent_sanitizer(wl, fseed, inten):
    net = wl.instance.network
    plan = random_fault_plan(
        net, horizon=run_online(wl).makespan, rng=root_rng(fseed),
        intensity=inten, objects=wl.instance.objects,
    )
    san = InvariantSanitizer()
    res = run_resilient(wl, plan, sanitizer=san)
    assert res.report.committed == wl.m
    for tid, ct in res.commits.items():
        assert ct >= wl.release_of(tid)
    assert san.violations == []
