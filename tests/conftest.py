"""Shared fixtures for the test suite.

Also pins the hypothesis profile used in CI: derandomized (fixed seed)
with fewer examples, so property tests are fast and bit-for-bit
reproducible across workflow runs.  Locally the default profile applies;
select the CI one explicitly with ``CI=1`` or
``pytest -p no:cacheprovider --hypothesis-profile=ci``.

Every test also runs under a wall-clock deadline so a hung multiprocess
test (a worker that never sends, a pipe nobody reads) fails loudly
instead of stalling the whole suite.  CI installs ``pytest-timeout``;
when the plugin is absent a SIGALRM-based fallback below enforces the
same deadline (POSIX main thread only -- fork children do not inherit
the alarm timer, so cluster/sweep worker processes are unaffected).
Override per run with ``REPRO_TEST_TIMEOUT=<seconds>`` (0 disables), or
per test with ``@pytest.mark.timeout(N)``.
"""

from __future__ import annotations

import os
import signal

import numpy as np
import pytest
from hypothesis import settings as hypothesis_settings

hypothesis_settings.register_profile(
    "ci", max_examples=20, derandomize=True, deadline=None
)
if os.environ.get("CI"):
    hypothesis_settings.load_profile("ci")

_DEFAULT_TEST_TIMEOUT = float(os.environ.get("REPRO_TEST_TIMEOUT", "300"))

try:
    import pytest_timeout  # noqa: F401

    _HAVE_PYTEST_TIMEOUT = True
except ModuleNotFoundError:
    _HAVE_PYTEST_TIMEOUT = False


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "timeout(seconds): per-test wall-clock deadline (plugin or "
        "SIGALRM fallback)",
    )


if not _HAVE_PYTEST_TIMEOUT and hasattr(signal, "SIGALRM"):

    def _test_deadline(item) -> float:
        marker = item.get_closest_marker("timeout")
        if marker is not None and marker.args:
            return float(marker.args[0])
        return _DEFAULT_TEST_TIMEOUT

    @pytest.hookimpl(hookwrapper=True)
    def pytest_runtest_call(item):
        seconds = _test_deadline(item)
        if seconds <= 0:
            yield
            return

        def _on_alarm(signum, frame):
            raise TimeoutError(
                f"{item.nodeid} exceeded its {seconds:.0f}s deadline "
                f"(REPRO_TEST_TIMEOUT or @pytest.mark.timeout to adjust)"
            )

        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, seconds)
        try:
            yield
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, previous)

from repro.core.instance import Instance
from repro.core.transaction import Transaction
from repro.network import (
    butterfly,
    clique,
    cluster,
    grid,
    hypercube,
    line,
    star,
)
from repro.workloads import random_k_subsets


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_clique():
    return clique(8)


@pytest.fixture
def small_line():
    return line(16)


@pytest.fixture
def small_grid():
    return grid(5)


@pytest.fixture
def small_cluster():
    return cluster(3, 4, gamma=5)


@pytest.fixture
def small_star():
    return star(3, 7)


@pytest.fixture
def small_hypercube():
    return hypercube(3)


@pytest.fixture
def small_butterfly():
    return butterfly(2)


@pytest.fixture(
    params=["clique", "line", "grid", "cluster", "hypercube", "butterfly", "star"]
)
def any_network(request):
    """One network of each topology family (parameterized)."""
    return {
        "clique": clique(8),
        "line": line(16),
        "grid": grid(5),
        "cluster": cluster(3, 4, gamma=5),
        "hypercube": hypercube(3),
        "butterfly": butterfly(2),
        "star": star(3, 7),
    }[request.param]


@pytest.fixture
def tiny_instance(small_clique):
    """A hand-built 3-transaction instance on an 8-clique."""
    txns = [
        Transaction(0, 0, {0, 1}),
        Transaction(1, 1, {1, 2}),
        Transaction(2, 2, {2}),
    ]
    homes = {0: 0, 1: 0, 2: 1}
    return Instance(small_clique, txns, homes)


def make_instance(net, rng, w=None, k=2):
    """Convenience builder used across integration tests."""
    if w is None:
        w = max(2, net.n // 2)
    return random_k_subsets(net, w, min(k, w), rng)
