"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_list_flag(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "e1" in out and "e13" in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "e7" in capsys.readouterr().out


class TestRun:
    def test_bare_experiment_id_implies_run(self, capsys):
        assert main(["e1", "--quick", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 1" in out
        assert "finished in" in out

    def test_explicit_run_subcommand(self, capsys):
        assert main(["run", "e3", "--quick"]) == 0
        assert "Theorem 2" in capsys.readouterr().out

    def test_markdown_mode(self, capsys):
        assert main(["e1", "--quick", "--markdown"]) == 0
        assert capsys.readouterr().out.lstrip().startswith("|")

    def test_unknown_experiment_raises(self):
        with pytest.raises(SystemExit):
            # not an experiment id and not a subcommand -> argparse error
            main(["e42", "--quick"])

    def test_json_output(self, tmp_path, capsys):
        import json

        out = tmp_path / "tables.json"
        assert main(["run", "e1", "--quick", "--json", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["schema_version"] == 1
        assert doc["kind"] == "experiment_tables"
        assert "e1" in doc["body"]["tables"]
        assert doc["body"]["tables"]["e1"]["rows"]


class TestTrace:
    def test_trace_out_and_summarize_reproduce_hottest_edge(
        self, tmp_path, capsys
    ):
        from repro.io import load_trace

        path = tmp_path / "e1-trace.json"
        assert main([
            "run", "e1", "--quick", "--seed", "3",
            "--trace-out", str(path),
        ]) == 0
        capsys.readouterr()
        trace = load_trace(path)
        assert main(["trace", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        (u, v), n = trace.hottest_edge
        assert f"hottest edge: ({u}, {v}) x {n}" in out
        assert "events:" in out and "counters:" in out

    def test_trace_export_csv(self, tmp_path, capsys):
        path = tmp_path / "t.json"
        csv_path = tmp_path / "t.csv"
        assert main([
            "run", "e1", "--quick", "--trace-out", str(path),
        ]) == 0
        assert main([
            "trace", "export", str(path), "--csv", str(csv_path),
        ]) == 0
        lines = csv_path.read_text().strip().split("\n")
        assert lines[0] == "kind,time,detail"
        assert len(lines) > 1

    def test_multi_target_traces_get_distinct_files(self, tmp_path, capsys):
        base = tmp_path / "trace.json"
        assert main([
            "run", "e1", "e3", "--quick", "--trace-out", str(base),
        ]) == 0
        assert (tmp_path / "trace-e1.json").exists()
        assert (tmp_path / "trace-e3.json").exists()


class TestSchedule:
    def test_clique_schedule(self, capsys):
        rc = main([
            "schedule", "--topology", "clique", "--size", "16",
            "--objects", "8", "--k", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "scheduler=clique" in out
        assert "makespan=" in out

    def test_cluster_with_size2_and_explicit_scheduler(self, capsys):
        rc = main([
            "schedule", "--topology", "cluster", "--size", "3",
            "--size2", "4", "--objects", "6", "--scheduler", "sequential",
        ])
        assert rc == 0
        assert "scheduler=sequential" in capsys.readouterr().out

    def test_save_and_validate_round_trip(self, tmp_path, capsys):
        path = tmp_path / "s.json"
        assert main([
            "schedule", "--topology", "grid", "--size", "4",
            "--objects", "4", "--save", str(path),
        ]) == 0
        assert path.exists()
        assert main(["validate", str(path)]) == 0
        assert "OK:" in capsys.readouterr().out

    def test_validate_json_verdict(self, tmp_path, capsys):
        import json

        path = tmp_path / "s.json"
        verdict = tmp_path / "verdict.json"
        assert main([
            "schedule", "--topology", "grid", "--size", "4",
            "--objects", "4", "--save", str(path),
        ]) == 0
        assert main(["validate", str(path), "--json", str(verdict)]) == 0
        doc = json.loads(verdict.read_text())
        assert doc["kind"] == "validation"
        assert doc["body"]["valid"] is True
        assert doc["body"]["makespan"] >= 1

    def test_gantt_output(self, capsys):
        assert main([
            "schedule", "--topology", "line", "--size", "12",
            "--objects", "4", "--gantt",
        ]) == 0
        assert "gantt:" in capsys.readouterr().out

    def test_unknown_topology_raises(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="unknown topology"):
            main(["schedule", "--topology", "moebius", "--size", "4"])

    def test_zipf_and_hot_workloads(self, capsys):
        for workload in ("zipf", "hot"):
            assert main([
                "schedule", "--topology", "clique", "--size", "10",
                "--objects", "5", "--workload", workload,
            ]) == 0


class TestFigures:
    def test_all_six_figures_printed(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        for fig in ("Fig 1", "Fig 2", "Fig 3", "Fig 4", "Fig 5", "Fig 6"):
            assert fig in out
        assert "boustrophedon" in out


class TestReport:
    def test_report_subcommand(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert main(["report", "-o", str(out), "e1"]) == 0
        text = out.read_text()
        assert "Reproduction report" in text
        assert "Fig 1" in text and "Fig 6" in text
        assert "Theorem 1" in text
        assert "| workload |" in text  # markdown table

    def test_report_default_covers_quick_suite(self, tmp_path):
        from repro.experiments.report import generate_report

        out = generate_report(tmp_path / "r.md", quick=True,
                              experiments=["e7", "e8"])
        text = out.read_text()
        assert "Theorem 6" in text
        assert text.count("###") >= 8  # 6 figures + 2 tables


class TestSweepCommand:
    def test_sweep_writes_report(self, tmp_path, capsys):
        from repro.cli import main
        from repro.experiments.sweep import SweepReport

        out = tmp_path / "sweep.json"
        assert main([
            "sweep", "e3", "--seeds", "1", "2",
            "--workers", "2", "--quick", "--json", str(out),
        ]) == 0
        printed = capsys.readouterr().out
        assert "2 cells" in printed and "workers=2" in printed
        report = SweepReport.from_json(out.read_text())
        assert report.seeds == (1, 2) and report.workers == 2


class TestSchedulersCommand:
    def test_lists_registry(self, capsys):
        from repro.cli import main

        assert main(["schedulers"]) == 0
        printed = capsys.readouterr().out
        for name in ("greedy", "clique", "line", "grid", "cluster", "star"):
            assert name in printed
        assert "bound:" in printed


class TestTopologiesCommand:
    def test_lists_every_registered_family(self, capsys):
        from repro.cli import main
        from repro.network import TOPOLOGY_INFO

        assert main(["topologies"]) == 0
        printed = capsys.readouterr().out
        for name in TOPOLOGY_INFO:
            assert name in printed
        assert "algo=" in printed
        assert "shards" in printed  # parameter schema is rendered

    def test_schedule_accepts_sharded_topologies(self, capsys):
        from repro.cli import main

        assert main([
            "schedule", "--topology", "shard-cluster", "--size", "3",
            "--size2", "4", "--objects", "9", "--k", "2", "--seed", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "sharded" in out


class TestClusterAssignFlag:
    def test_shard_assignment_runs_with_parity(self, capsys):
        from repro.cli import main

        assert main([
            "cluster", "--topology", "shard-cluster", "--size", "3",
            "--size2", "4", "--workers", "2", "--windows", "8",
            "--rate", "0.8", "--objects", "12", "--assign", "shard",
            "--seed", "3", "--parity",
        ]) == 0
        out = capsys.readouterr().out
        assert "parity with fault-free run: OK" in out
        assert "cross-shard" in out


class TestScheduleKernelFlag:
    def test_kernel_choices_agree(self, capsys):
        from repro.cli import main

        for kernel in ("reference", "vectorized"):
            assert main([
                "schedule", "--topology", "clique", "--size", "8",
                "--objects", "6", "--k", "2", "--kernel", kernel,
            ]) == 0


class TestServiceCommand:
    def test_service_runs_and_reports(self, capsys):
        rc = main([
            "service", "--topology", "grid", "--size", "4",
            "--rate", "0.5", "--windows", "20", "--seed", "3",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "service[batch]" in out
        assert "committed" in out

    def test_service_json_round_trips(self, tmp_path, capsys):
        from repro.io import load_report
        from repro.service import ServiceReport

        out = tmp_path / "svc.json"
        rc = main([
            "service", "--topology", "clique", "--size", "8",
            "--stream", "adversarial", "--rate", "0.4", "--burst", "3",
            "--windows", "15", "--json", str(out),
        ])
        assert rc == 0
        rep = load_report(out)
        assert isinstance(rep, ServiceReport)
        assert rep.accounted
