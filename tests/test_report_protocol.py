"""Tests for the unified Report protocol (repro.analysis.report)."""

import json

import numpy as np
import pytest

from repro.analysis import (
    REPORT_KINDS,
    REPORT_SCHEMA_VERSION,
    Evaluation,
    Report,
    evaluate,
    report_from_json,
)
from repro.core import GreedyScheduler
from repro.errors import ReproError
from repro.network import clique
from repro.workloads import random_k_subsets


def _evaluation():
    rng = np.random.default_rng(3)
    inst = random_k_subsets(clique(8), w=6, k=2, rng=rng)
    return evaluate(GreedyScheduler(), inst, rng)


def _degradation():
    from repro.core.dispatch import resolve_scheduler
    from repro.faults import (
        degradation_report,
        faulty_execute,
        random_fault_plan,
    )
    from repro.network import grid

    net = grid(5)
    rng = np.random.default_rng(7)
    inst = random_k_subsets(net, 10, 2, rng)
    sched = resolve_scheduler(
        topology=inst.network.topology.name
    ).schedule(inst, rng)
    plan = random_fault_plan(net, horizon=sched.makespan, rng=rng,
                             crash_rate=0.05, objects=inst.objects)
    return degradation_report(sched, plan, faulty_execute(sched, plan))


def _online_degradation():
    from repro.faults.plan import random_fault_plan
    from repro.online.arrivals import poisson_workload
    from repro.online.resilient import run_resilient

    net = clique(8)
    wl = poisson_workload(net, w=6, k=2, rate=0.7, count=6,
                          rng=np.random.default_rng(11))
    plan = random_fault_plan(net, horizon=20, rng=np.random.default_rng(5))
    return run_resilient(wl, plan=plan).report


class TestRoundTrips:
    def test_evaluation_round_trip(self):
        ev = _evaluation()
        assert Evaluation.from_json(ev.to_json()) == ev

    def test_degradation_round_trip(self):
        rep = _degradation()
        assert type(rep).from_json(rep.to_json()) == rep

    def test_online_degradation_round_trip(self):
        rep = _online_degradation()
        assert type(rep).from_json(rep.to_json()) == rep

    def test_tuple_fields_survive(self):
        rep = _online_degradation()
        back = type(rep).from_json(rep.to_json())
        assert isinstance(back.lost, tuple)
        assert all(isinstance(p, tuple) for p in back.lost)


class TestDispatch:
    def test_report_from_json_dispatches_each_kind(self):
        for rep in (_evaluation(), _degradation(), _online_degradation()):
            back = report_from_json(rep.to_json())
            assert type(back) is type(rep)
            assert back == rep

    def test_all_three_kinds_registered(self):
        assert {"evaluation", "degradation", "online_degradation"} <= set(
            REPORT_KINDS
        )

    def test_envelope_shape(self):
        doc = json.loads(_evaluation().to_json())
        assert doc["schema_version"] == REPORT_SCHEMA_VERSION
        assert doc["kind"] == "evaluation"
        assert "report" in doc

    def test_unknown_kind_raises(self):
        bad = json.dumps(
            {"schema_version": REPORT_SCHEMA_VERSION, "kind": "nope",
             "report": {}}
        )
        with pytest.raises(ReproError, match="unknown report kind"):
            report_from_json(bad)

    def test_wrong_schema_version_raises(self):
        bad = json.dumps(
            {"schema_version": 99, "kind": "evaluation", "report": {}}
        )
        with pytest.raises(ReproError, match="schema_version"):
            report_from_json(bad)

    def test_kind_mismatch_raises(self):
        with pytest.raises(ReproError, match="expected report kind"):
            Evaluation.from_json(_degradation().to_json())

    def test_malformed_json_raises(self):
        with pytest.raises(ReproError, match="malformed"):
            report_from_json("{not json")


class TestProtocol:
    def test_all_reports_satisfy_protocol(self):
        for rep in (_evaluation(), _degradation(), _online_degradation()):
            assert isinstance(rep, Report)
            assert isinstance(rep.as_dict(), dict)

    def test_as_row_is_deprecated(self):
        ev = _evaluation()
        with pytest.warns(DeprecationWarning, match="as_row"):
            assert ev.as_row() == ev.as_dict()
