"""Tests for the ASCII figure/schedule renderers."""

import numpy as np
import pytest

from repro.core import GreedyScheduler, GridScheduler
from repro.errors import TopologyError
from repro.network import (
    clique,
    cluster,
    grid,
    lower_bound_grid,
    lower_bound_tree,
    star,
)
from repro.viz import (
    render_block_graph,
    render_cluster,
    render_gantt,
    render_line_blocks,
    render_object_path,
    render_star_rings,
    render_subgrid_order,
)
from repro.workloads import random_k_subsets


class TestFig1Line:
    def test_blocks_alternate_phase_markers(self):
        out = render_line_blocks(32, 8)
        body = out.splitlines()[1]  # skip the legend
        assert body.count("[") == 2  # two S1 blocks
        assert body.count("(") == 2  # two S2 blocks
        assert body.startswith("[v0") and "v31)" in body

    def test_truncated_last_block(self):
        out = render_line_blocks(10, 4)
        assert "v9" in out
        assert "ell=4" in out


class TestFig2Grid:
    def test_boustrophedon_order(self):
        out = render_subgrid_order(16, 16, 4)
        rows = [r.split() for r in out.splitlines()[1:]]
        # first column top->bottom: 1..4; second bottom->top: 5..8
        col0 = [int(r[0]) for r in rows]
        col1 = [int(r[1]) for r in rows]
        assert col0 == [1, 2, 3, 4]
        assert col1 == [8, 7, 6, 5]

    def test_object_path_marks_home_and_visits(self):
        rng = np.random.default_rng(0)
        inst = random_k_subsets(grid(8), w=8, k=2, rng=rng)
        sched = GridScheduler(side=4).schedule(inst)
        hot = max(inst.objects, key=inst.load)
        out = render_object_path(sched, hot, cols=8)
        assert "*" in out
        assert "1" in out
        assert len(out.splitlines()) == 9  # header + 8 rows


class TestFig3Cluster:
    def test_contains_bridges_and_gamma(self):
        out = render_cluster(cluster(5, 6, gamma=8))
        assert "gamma=8" in out
        assert out.count("C") >= 5
        assert "*0" in out  # first bridge node

    def test_rejects_wrong_topology(self):
        with pytest.raises(TopologyError):
            render_cluster(clique(4))


class TestFig4Star:
    def test_rings_match_eta(self):
        out = render_star_rings(star(8, 7))
        assert "V1" in out and "V2" in out and "V3" in out
        assert "V4" not in out
        assert out.count("r") >= 8  # a row per ray

    def test_rejects_wrong_topology(self):
        with pytest.raises(TopologyError):
            render_star_rings(clique(4))


class TestFig56Blocks:
    def test_grid_blocks(self):
        out = render_block_graph(lower_bound_grid(4))
        assert "[H1:4x2]" in out and "[H4:4x2]" in out
        assert "=4=" in out  # inter-block weight

    def test_tree_blocks(self):
        out = render_block_graph(lower_bound_tree(4))
        assert "comb-tree" in out

    def test_rejects_wrong_topology(self):
        with pytest.raises(TopologyError):
            render_block_graph(clique(4))


class TestGantt:
    def test_marks_every_transaction(self):
        rng = np.random.default_rng(1)
        inst = random_k_subsets(clique(8), w=4, k=2, rng=rng)
        s = GreedyScheduler().schedule(inst)
        out = render_gantt(s)
        assert out.count("#") == inst.m

    def test_compression_for_long_schedules(self):
        rng = np.random.default_rng(2)
        inst = random_k_subsets(grid(6), w=4, k=2, rng=rng)
        s = GreedyScheduler().schedule(inst)
        out = render_gantt(s, max_width=10)
        assert all(len(line) <= 25 for line in out.splitlines()[1:])

    def test_subset_of_tids(self):
        rng = np.random.default_rng(3)
        inst = random_k_subsets(clique(6), w=3, k=2, rng=rng)
        s = GreedyScheduler().schedule(inst)
        out = render_gantt(s, tids=[0, 1])
        assert out.count("#") == 2


class TestDependencyRender:
    def test_lists_conflicts_with_weights(self):
        from repro.core import Instance, Transaction
        from repro.network import line
        from repro.viz import render_dependency

        txns = [
            Transaction(0, 0, {0}),
            Transaction(1, 4, {0}),
            Transaction(2, 6, {1}),
        ]
        inst = Instance(line(8), txns, {0: 0, 1: 6})
        out = render_dependency(inst)
        assert "h_max=4" in out
        assert "T0: T1(w4)" in out
        assert "T2" in out and "T2: -" in out  # no conflicts

    def test_colour_annotation(self):
        from repro.core import DependencyGraph, Instance, Transaction
        from repro.core.coloring import greedy_color
        from repro.network import clique
        from repro.viz import render_dependency

        txns = [Transaction(i, i, {0}) for i in range(3)]
        inst = Instance(clique(3), txns, {0: 0})
        colors = greedy_color(DependencyGraph.build(inst))
        out = render_dependency(inst, colors)
        assert "colour=1" in out
