"""Tests for the exception hierarchy contract."""

import pytest

from repro.errors import (
    ClusterError,
    DeadlineExpiredError,
    FaultError,
    GraphError,
    HeartbeatTimeoutError,
    InfeasibleScheduleError,
    InstanceError,
    RecoveryError,
    ReproError,
    SaturationError,
    SchedulingError,
    ServiceError,
    SweepTimeoutError,
    TopologyError,
    WorkerCrashError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            GraphError,
            InstanceError,
            InfeasibleScheduleError,
            TopologyError,
            SchedulingError,
            FaultError,
            RecoveryError,
            ServiceError,
            DeadlineExpiredError,
            SaturationError,
            SweepTimeoutError,
            ClusterError,
            WorkerCrashError,
            HeartbeatTimeoutError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_service_errors_form_a_sub_hierarchy(self):
        # one except ServiceError clause catches every service failure
        assert issubclass(DeadlineExpiredError, ServiceError)
        assert issubclass(SaturationError, ServiceError)
        with pytest.raises(ServiceError):
            raise DeadlineExpiredError("too slow")
        with pytest.raises(ServiceError):
            raise SaturationError("diverging")

    def test_cluster_errors_form_a_sub_hierarchy(self):
        # one except ClusterError clause catches every cluster failure
        assert issubclass(WorkerCrashError, ClusterError)
        assert issubclass(HeartbeatTimeoutError, ClusterError)
        with pytest.raises(ClusterError):
            raise WorkerCrashError("worker 3 died")
        with pytest.raises(ClusterError):
            raise HeartbeatTimeoutError("worker 3 went silent")
        # but a sweep timeout is not a cluster failure
        assert not issubclass(SweepTimeoutError, ClusterError)

    def test_recovery_error_is_a_fault_error(self):
        # callers handling fault-layer failures with one except clause
        # must also catch failed recoveries
        assert issubclass(RecoveryError, FaultError)
        with pytest.raises(FaultError):
            raise RecoveryError("partitioned")

    def test_fault_errors_importable_from_top_level(self):
        import repro

        assert repro.FaultError is FaultError
        assert repro.RecoveryError is RecoveryError

    def test_one_except_clause_catches_library_failures(self):
        from repro.core import Instance, Transaction
        from repro.network import clique

        caught = []
        for bad in (
            lambda: clique(0),
            lambda: Instance(clique(2), [], {}),
            lambda: Transaction(0, 0, []),
        ):
            try:
                bad()
            except ReproError as exc:
                caught.append(type(exc).__name__)
        assert caught == ["GraphError", "InstanceError", "InstanceError"]
