"""Unit tests for the runtime invariant sanitizer (repro.sim.sanitizer)."""

import pytest

from repro.core import Transaction
from repro.errors import InvariantViolationError
from repro.faults import FaultPlan, LinkFailure
from repro.network import grid
from repro.online import poisson_workload, run_online, run_resilient
from repro.sim import InvariantSanitizer
from repro.workloads import root_rng


def txn(tid=0, node=1, objects=(0,)):
    return Transaction(tid, node, set(objects))


class TestSingleCopy:
    def test_in_flight_object_without_position_fails(self):
        san = InvariantSanitizer()
        with pytest.raises(InvariantViolationError, match="exactly one copy"):
            san.check_step(3, {0: 1}, moving={0, 5}, pending={})

    def test_object_at_nonexistent_node_fails(self):
        san = InvariantSanitizer()
        with pytest.raises(InvariantViolationError, match="nonexistent"):
            san.check_step(3, {0: 99}, moving=set(), pending={}, n=16)

    def test_pending_txn_needing_vanished_object_fails(self):
        san = InvariantSanitizer()
        with pytest.raises(InvariantViolationError, match="no copy"):
            san.check_step(3, {0: 1}, moving=set(), pending={7: txn(7, 1, {0, 4})})

    def test_consistent_state_passes(self):
        san = InvariantSanitizer()
        san.check_step(3, {0: 1, 1: 2}, moving={1}, pending={0: txn()}, n=4)
        assert san.checks == 1
        assert san.violations == []


class TestCommitInvariants:
    def test_commit_before_release_fails(self):
        san = InvariantSanitizer()
        with pytest.raises(InvariantViolationError, match="before its release"):
            san.check_commit(2, txn(), {0: 1}, moving=set(), release={0: 5})

    def test_commit_with_object_in_flight_fails(self):
        san = InvariantSanitizer()
        with pytest.raises(InvariantViolationError, match="in flight"):
            san.check_commit(9, txn(), {0: 1}, moving={0}, release={0: 1})

    def test_commit_with_object_elsewhere_fails(self):
        san = InvariantSanitizer()
        with pytest.raises(InvariantViolationError, match="sits at"):
            san.check_commit(9, txn(node=1), {0: 3}, moving=set(),
                             release={0: 1})

    def test_valid_commit_passes(self):
        san = InvariantSanitizer()
        san.check_commit(9, txn(node=1), {0: 1}, moving=set(), release={0: 1})
        assert san.violations == []


class TestHopAndDispatch:
    def test_hop_on_down_link_fails(self):
        san = InvariantSanitizer()
        plan = FaultPlan([LinkFailure(1, 2, 0, 10)])
        with pytest.raises(InvariantViolationError, match="down link"):
            san.check_hop(5, 1, 2, plan)
        san2 = InvariantSanitizer()
        san2.check_hop(10, 1, 2, plan)  # repaired: fine
        assert san2.violations == []

    def test_dispatch_past_higher_priority_waiter_fails(self):
        san = InvariantSanitizer()
        pending = {0: txn(0, 1), 1: txn(1, 2)}
        prio = {0: (0, 0), 1: (5, 1)}
        with pytest.raises(InvariantViolationError, match="monotonicity"):
            san.check_dispatch(4, 0, pending[1], pending, prio)

    def test_dispatch_without_any_requester_fails(self):
        san = InvariantSanitizer()
        with pytest.raises(InvariantViolationError, match="no pending"):
            san.check_dispatch(4, 0, txn(0, 1), {}, {0: (0, 0)})

    def test_dispatch_to_best_passes(self):
        san = InvariantSanitizer()
        pending = {0: txn(0, 1), 1: txn(1, 2)}
        prio = {0: (0, 0), 1: (5, 1)}
        san.check_dispatch(4, 0, pending[0], pending, prio)
        assert san.violations == []


class TestModes:
    def test_disabled_sanitizer_is_a_noop(self):
        san = InvariantSanitizer(enabled=False)
        san.check_step(3, {0: 1}, moving={0, 5}, pending={})
        san.check_hop(5, 1, 2, FaultPlan([LinkFailure(1, 2, 0, 10)]))
        assert san.checks == 0
        assert san.violations == []

    def test_collecting_mode_records_instead_of_raising(self):
        san = InvariantSanitizer(raise_on_violation=False)
        san.check_step(3, {0: 1}, moving={0, 5}, pending={})
        san.check_commit(2, txn(), {0: 1}, moving=set(), release={0: 5})
        assert len(san.violations) == 2
        assert all(isinstance(v, str) for v in san.violations)


class TestRuntimeWiring:
    def test_run_online_accepts_sanitizer(self):
        wl = poisson_workload(grid(4), w=5, k=2, rate=1.0, count=12,
                              rng=root_rng(3))
        san = InvariantSanitizer()
        res = run_online(wl, sanitizer=san)
        assert len(res.schedule.commit_times) == wl.m
        assert san.checks > 0
        assert san.violations == []

    def test_sanitized_run_online_matches_unsanitized(self):
        wl = poisson_workload(grid(4), w=5, k=2, rate=1.0, count=12,
                              rng=root_rng(4))
        assert (
            run_online(wl, sanitizer=InvariantSanitizer()).schedule.commit_times
            == run_online(wl).schedule.commit_times
        )

    def test_run_resilient_reports_checks(self):
        wl = poisson_workload(grid(4), w=5, k=2, rate=1.0, count=12,
                              rng=root_rng(5))
        san = InvariantSanitizer()
        res = run_resilient(wl, sanitizer=san)
        assert res.report.sanitizer_checks == san.checks > 0
        assert res.report.violations == 0
