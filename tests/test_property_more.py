"""Property-based tests, round two: schedulers, retiming, io, online.

Complements ``test_property.py`` with invariants over the newer modules:

* serialization round-trips are loss-free for arbitrary instances and
  schedules;
* compaction never increases makespan, never breaks feasibility, and
  preserves per-object visit orders;
* every topology scheduler is feasible over randomly parameterized
  topologies and workloads (not just the fixture sizes);
* the exact scheduler is sandwiched between the certified lower bound and
  every heuristic scheduler;
* the online runtime always terminates with release-respecting commits.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bounds import makespan_lower_bound, optimal_schedule
from repro.core import GreedyScheduler, compact_schedule
from repro.core.dispatch import resolve_scheduler, schedule
from repro.io import (
    instance_from_dict,
    instance_to_dict,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.network import clique, cluster, grid, line, star
from repro.online import OnlineWorkload, TimedTransaction, run_online
from repro.sim import execute
from repro.workloads import random_k_subsets


@st.composite
def topology_instances(draw):
    """A random topology with a random uniform workload on it."""
    family = draw(st.sampled_from(["clique", "line", "grid", "cluster", "star"]))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    if family == "clique":
        net = clique(draw(st.integers(min_value=2, max_value=20)))
    elif family == "line":
        net = line(draw(st.integers(min_value=2, max_value=30)))
    elif family == "grid":
        net = grid(
            draw(st.integers(min_value=2, max_value=5)),
            draw(st.integers(min_value=2, max_value=5)),
        )
    elif family == "cluster":
        beta = draw(st.integers(min_value=2, max_value=5))
        net = cluster(
            draw(st.integers(min_value=2, max_value=4)),
            beta,
            gamma=beta + draw(st.integers(min_value=0, max_value=4)),
        )
    else:
        net = star(
            draw(st.integers(min_value=2, max_value=4)),
            draw(st.integers(min_value=2, max_value=8)),
        )
    w = draw(st.integers(min_value=1, max_value=6))
    k = draw(st.integers(min_value=1, max_value=min(3, w)))
    return random_k_subsets(net, w, k, rng)


@given(topology_instances(), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_topology_schedulers_always_feasible(inst, seed):
    rng = np.random.default_rng(seed)
    s = schedule(inst, rng=rng)
    s.validate()
    execute(s)
    assert s.makespan >= makespan_lower_bound(inst)


@given(topology_instances(), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_compaction_invariants(inst, seed):
    rng = np.random.default_rng(seed)
    original = resolve_scheduler(
        topology=inst.network.topology.name
    ).schedule(inst, rng)
    compacted = compact_schedule(original)
    compacted.validate()
    assert compacted.makespan <= original.makespan
    for obj in inst.objects:
        orig = [
            t.tid
            for t in sorted(
                inst.users(obj),
                key=lambda t: (original.time_of(t.tid), t.tid),
            )
        ]
        new = [
            t.tid
            for t in sorted(
                inst.users(obj),
                key=lambda t: (compacted.time_of(t.tid), t.tid),
            )
        ]
        assert orig == new


@given(topology_instances())
@settings(max_examples=40, deadline=None)
def test_serialization_round_trip(inst):
    back = instance_from_dict(instance_to_dict(inst))
    assert back.object_homes == inst.object_homes
    assert [
        (t.tid, t.node, t.objects) for t in back.transactions
    ] == [(t.tid, t.node, t.objects) for t in inst.transactions]
    s = GreedyScheduler().schedule(inst)
    s_back = schedule_from_dict(schedule_to_dict(s))
    assert s_back.commit_times == s.commit_times
    s_back.validate()


@given(topology_instances())
@settings(max_examples=25, deadline=None)
def test_exact_sandwich_on_tiny_prefixes(inst):
    if inst.m > 7:
        tids = [t.tid for t in inst.transactions[:7]]
        inst = inst.restrict(tids)
    opt = optimal_schedule(inst)
    opt.validate()
    greedy = GreedyScheduler().schedule(inst)
    assert makespan_lower_bound(inst) <= opt.makespan <= greedy.makespan
    assert opt.makespan <= compact_schedule(greedy).makespan


@given(
    topology_instances(),
    st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=30),
)
@settings(max_examples=40, deadline=None)
def test_online_runtime_terminates_and_respects_releases(inst, gaps):
    txns = list(inst.transactions)
    releases = np.cumsum(gaps[: len(txns)]).tolist()
    while len(releases) < len(txns):
        releases.append(releases[-1])
    arrivals = [
        TimedTransaction(int(r), t) for r, t in zip(releases, txns)
    ]
    wl = OnlineWorkload(inst.network, arrivals, inst.object_homes)
    res = run_online(wl)
    res.schedule.validate()
    for tid, ct in res.schedule.commit_times.items():
        assert ct >= wl.release_of(tid)
