"""Unit tests for Transaction and Instance (repro.core model layer)."""

import pytest

from repro.core import Instance, Transaction
from repro.errors import InstanceError
from repro.network import clique, line


class TestTransaction:
    def test_fields_normalized(self):
        t = Transaction("3", "5", ["1", 2, 2])
        assert t.tid == 3
        assert t.node == 5
        assert t.objects == frozenset({1, 2})
        assert t.k == 2

    def test_uses(self):
        t = Transaction(0, 0, {4})
        assert t.uses(4)
        assert not t.uses(5)

    def test_rejects_empty_object_set(self):
        with pytest.raises(InstanceError, match=">= 1 object"):
            Transaction(0, 0, [])

    def test_frozen(self):
        t = Transaction(0, 0, {1})
        with pytest.raises(AttributeError):
            t.node = 3

    def test_ordering_by_tid(self):
        assert Transaction(1, 0, {1}) < Transaction(2, 1, {1})

    def test_hashable_and_equal_on_identity_fields(self):
        a = Transaction(1, 0, {1, 2})
        b = Transaction(1, 0, {9})
        # order=True compares (tid, node); objects excluded from compare
        assert a == b
        assert hash(a) is not None


class TestInstanceValidation:
    def test_minimal_instance(self):
        inst = Instance(clique(2), [Transaction(0, 0, {0})], {0: 1})
        assert inst.m == 1
        assert inst.num_objects == 1

    def test_rejects_empty_batch(self):
        with pytest.raises(InstanceError, match="at least one"):
            Instance(clique(2), [], {})

    def test_rejects_duplicate_tid(self):
        with pytest.raises(InstanceError, match="duplicate"):
            Instance(
                clique(3),
                [Transaction(0, 0, {0}), Transaction(0, 1, {0})],
                {0: 0},
            )

    def test_rejects_two_transactions_per_node(self):
        with pytest.raises(InstanceError, match="more than one"):
            Instance(
                clique(3),
                [Transaction(0, 1, {0}), Transaction(1, 1, {0})],
                {0: 0},
            )

    def test_rejects_node_out_of_graph(self):
        with pytest.raises(InstanceError, match="outside graph"):
            Instance(clique(2), [Transaction(0, 7, {0})], {0: 0})

    def test_rejects_homeless_object(self):
        with pytest.raises(InstanceError, match="no home"):
            Instance(clique(2), [Transaction(0, 0, {3})], {0: 0})

    def test_rejects_home_out_of_graph(self):
        with pytest.raises(InstanceError, match="outside graph"):
            Instance(clique(2), [Transaction(0, 0, {0})], {0: 9})

    def test_rejects_more_transactions_than_nodes(self):
        with pytest.raises(InstanceError, match="exceed"):
            Instance(
                clique(1),
                [Transaction(0, 0, {0}), Transaction(1, 0, {0})],
                {0: 0},
            )


class TestInstanceAccessors:
    def make(self):
        txns = [
            Transaction(0, 0, {0, 1}),
            Transaction(1, 1, {1}),
            Transaction(2, 2, {1, 2, 3}),
        ]
        homes = {0: 0, 1: 1, 2: 2, 3: 2, 9: 3}
        return Instance(clique(5), txns, homes)

    def test_objects_sorted_includes_unused(self):
        assert self.make().objects == (0, 1, 2, 3, 9)

    def test_users_and_load(self):
        inst = self.make()
        assert {t.tid for t in inst.users(1)} == {0, 1, 2}
        assert inst.load(1) == 3
        assert inst.load(9) == 0
        assert inst.users(9) == ()

    def test_max_load_and_max_k(self):
        inst = self.make()
        assert inst.max_load == 3
        assert inst.max_k == 3

    def test_paper_m(self):
        inst = self.make()
        assert inst.paper_m == max(5, 5)

    def test_lookup_by_tid_and_node(self):
        inst = self.make()
        assert inst.transaction(2).node == 2
        assert inst.transaction_at(1).tid == 1
        assert inst.transaction_at(4) is None

    def test_homes_at_requesters_true(self):
        # every used object is homed at one of its requesters (unused
        # object 9 does not participate in the check)
        assert self.make().homes_at_requesters is True
        txns = [Transaction(0, 0, {0})]
        inst = Instance(clique(2), txns, {0: 0})
        assert inst.homes_at_requesters is True

    def test_homes_at_requesters_false(self):
        txns = [Transaction(0, 0, {0})]
        inst = Instance(clique(2), txns, {0: 1})
        assert inst.homes_at_requesters is False


class TestRestrict:
    def test_keeps_subset_and_repositions(self):
        txns = [
            Transaction(0, 0, {0}),
            Transaction(1, 1, {0, 1}),
            Transaction(2, 2, {1}),
        ]
        inst = Instance(line(4), txns, {0: 0, 1: 2})
        sub = inst.restrict([1, 2], object_positions={0: 3})
        assert sub.m == 2
        assert sub.home(0) == 3  # overridden
        assert sub.home(1) == 2  # inherited
        assert {t.tid for t in sub.transactions} == {1, 2}

    def test_restrict_drops_unneeded_objects(self):
        txns = [Transaction(0, 0, {0}), Transaction(1, 1, {1})]
        inst = Instance(line(3), txns, {0: 0, 1: 1})
        sub = inst.restrict([0])
        assert sub.objects == (0,)
