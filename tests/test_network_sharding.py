"""Tests for the sharded topology family (repro.network.sharding).

The shard partition is the load-bearing invariant: every scheduler and
stream-assignment decision built on top assumes ``shard_members`` is an
exact partition of the node set (disjoint, covering).  Property tests
drive that across sampled sizes for both families.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GraphError, TopologyError
from repro.network import (
    clique,
    fog_hierarchy,
    node_shards,
    shard_cluster,
    shard_members,
)


class TestShardCluster:
    def test_basic_shape(self):
        net = shard_cluster(4, 6)
        assert net.n == 24
        assert net.topology.name == "shard-cluster"
        members = shard_members(net)
        assert len(members) == 4
        assert all(len(m) == 6 for m in members)

    def test_carries_cluster_aliases(self):
        # the §6 ClusterScheduler runs unchanged on shard-cluster: the
        # topology carries the cluster family's metadata under the same
        # keys (clusters/bridges/alpha/beta/gamma)
        net = shard_cluster(3, 5, gamma=10)
        p = net.topology.params
        assert p["alpha"] == 3 and p["beta"] == 5 and p["gamma"] == 10
        assert p["clusters"] == p["members"]
        assert tuple(p["bridges"]) == tuple(p["leaders"])

    def test_gamma_default_and_validation(self):
        assert shard_cluster(3, 4).topology.params["gamma"] == 4
        with pytest.raises(GraphError):
            shard_cluster(3, 4, gamma=2)  # gamma must be >= shard_size

    def test_leader_mesh_distance(self):
        net = shard_cluster(3, 4, gamma=7)
        leaders = net.topology.params["leaders"]
        assert net.dist(leaders[0], leaders[1]) == 7
        # intra-shard nodes sit at clique distance 1
        members = shard_members(net)
        assert net.dist(members[0][0], members[0][1]) == 1


class TestFogHierarchy:
    def test_tree_shape(self):
        net = fog_hierarchy(3, fanout=2, shard_size=4)
        members = shard_members(net)
        assert len(members) == 7  # 1 + 2 + 4
        assert net.n == 28

    def test_fanout_one_is_a_chain(self):
        net = fog_hierarchy(3, fanout=1, shard_size=2)
        assert len(shard_members(net)) == 3

    def test_no_cluster_aliases(self):
        # fog uplinks are tier-weighted, so the diameter exceeds the
        # cluster graph's gamma + 2 budget; the §6 scheduler must NOT
        # silently accept it
        net = fog_hierarchy(2, fanout=2, shard_size=3)
        assert "clusters" not in net.topology.params

    def test_tier_metadata(self):
        net = fog_hierarchy(3, fanout=2, shard_size=4)
        tier_of = net.topology.params["tier_of"]
        assert tier_of[0] == 0
        assert tier_of[1] == tier_of[2] == 1
        assert all(tier_of[s] == 2 for s in range(3, 7))


class TestShardPartition:
    @given(
        shards=st.integers(min_value=1, max_value=6),
        size=st.integers(min_value=2, max_value=6),
    )
    def test_shard_cluster_partition_exact(self, shards, size):
        net = shard_cluster(shards, size)
        members = shard_members(net)
        seen = [node for m in members for node in m]
        assert sorted(seen) == list(range(net.n))  # disjoint + covering
        assert node_shards(net) == {
            node: sid for sid, m in enumerate(members) for node in m
        }

    @given(
        tiers=st.integers(min_value=1, max_value=3),
        fanout=st.integers(min_value=1, max_value=3),
        size=st.integers(min_value=2, max_value=4),
    )
    def test_fog_partition_exact(self, tiers, fanout, size):
        net = fog_hierarchy(tiers, fanout=fanout, shard_size=size)
        members = shard_members(net)
        seen = [node for m in members for node in m]
        assert sorted(seen) == list(range(net.n))

    def test_plain_cluster_is_sharded_family(self):
        from repro.network import cluster

        net = cluster(3, 4)
        assert len(shard_members(net)) == 3

    def test_unsharded_family_raises(self):
        with pytest.raises(TopologyError, match="sharded"):
            shard_members(clique(8))
        with pytest.raises(TopologyError, match="sharded"):
            node_shards(clique(8))
