"""Unit tests for the bounded-capacity executor."""

import numpy as np
import pytest

from repro.core import GreedyScheduler, Instance, Schedule, Transaction, compact_schedule
from repro.errors import SchedulingError
from repro.network import clique, grid, line
from repro.network.graph import Network
from repro.sim import capacity_execute, congestion_report
from repro.workloads import random_k_subsets


class TestCapacityExecute:
    def test_unbounded_capacity_equals_compaction(self):
        rng = np.random.default_rng(0)
        inst = random_k_subsets(grid(6), w=8, k=2, rng=rng)
        s = GreedyScheduler().schedule(inst)
        res = capacity_execute(s, capacity=10**6)
        assert res.commit_times == compact_schedule(s).commit_times
        assert res.link_wait == 0

    def test_capacity_one_never_faster(self):
        rng = np.random.default_rng(1)
        inst = random_k_subsets(grid(6), w=8, k=2, rng=rng)
        s = GreedyScheduler().schedule(inst)
        one = capacity_execute(s, capacity=1)
        many = capacity_execute(s, capacity=10**6)
        assert one.makespan >= many.makespan

    def test_monotone_in_capacity(self):
        rng = np.random.default_rng(2)
        inst = random_k_subsets(line(20), w=6, k=2, rng=rng)
        s = GreedyScheduler().schedule(inst)
        spans = [
            capacity_execute(s, capacity=c).makespan for c in (1, 2, 4, 64)
        ]
        assert spans == sorted(spans, reverse=True)

    def test_within_analytical_bracket(self):
        rng = np.random.default_rng(3)
        inst = random_k_subsets(grid(6), w=8, k=2, rng=rng)
        s = GreedyScheduler().schedule(inst)
        rep = congestion_report(s)
        actual = capacity_execute(s, capacity=1).makespan
        assert actual >= rep.capacity1_lower_bound
        # the trivial dilation bound applies to the *same* commit order
        assert actual <= max(rep.max_peak, 1) * s.makespan + s.makespan

    def test_forced_contention_on_single_edge(self):
        # two objects must cross the only edge simultaneously: capacity 1
        # serializes the crossings
        net = Network(2, [(0, 1, 3)])
        txns = [Transaction(0, 1, {0, 1})]
        inst = Instance(net, txns, {0: 0, 1: 0})
        s = Schedule(inst, {0: 3})
        res = capacity_execute(s, capacity=1)
        assert res.makespan == 6  # second object waits 3 steps
        assert res.link_wait == 3
        res2 = capacity_execute(s, capacity=2)
        assert res2.makespan == 3
        assert res2.link_wait == 0

    def test_reservations_respect_capacity(self):
        # replay the reservations and assert per-edge concurrency <= c
        rng = np.random.default_rng(4)
        inst = random_k_subsets(clique(12), w=4, k=2, rng=rng)
        s = GreedyScheduler().schedule(inst)
        for c in (1, 2):
            res = capacity_execute(s, capacity=c)
            # re-derive occupancy: simulate again tracking intervals
            # (the executor's channels enforce it; this is a re-check via
            # traffic ordering: waits imply serialization happened)
            assert res.makespan >= 1
            assert all(v >= 1 for v in res.edge_traffic.values())

    def test_object_chains_keep_commit_order(self):
        rng = np.random.default_rng(5)
        inst = random_k_subsets(grid(5), w=5, k=2, rng=rng)
        s = GreedyScheduler().schedule(inst)
        res = capacity_execute(s, capacity=1)
        for obj in inst.objects:
            users = sorted(inst.users(obj), key=lambda t: s.time_of(t.tid))
            times = [res.commit_times[t.tid] for t in users]
            assert times == sorted(times)

    def test_invalid_capacity_rejected(self):
        rng = np.random.default_rng(6)
        inst = random_k_subsets(clique(4), w=2, k=1, rng=rng)
        s = GreedyScheduler().schedule(inst)
        with pytest.raises(SchedulingError):
            capacity_execute(s, capacity=0)
