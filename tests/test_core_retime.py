"""Tests for schedule compaction (earliest-feasible retiming)."""

import numpy as np
import pytest

from repro.core import GreedyScheduler, compact_schedule
from repro.core.dispatch import resolve_scheduler
from repro.network import clique, cluster, grid, line, star
from repro.sim import execute
from repro.workloads import hot_object_instance, random_k_subsets

NETS = [clique(16), line(24), grid(5), cluster(3, 4, 5), star(3, 7)]


class TestCompaction:
    @pytest.mark.parametrize("net", NETS, ids=lambda n: n.topology.name)
    def test_never_later_and_feasible(self, net):
        rng = np.random.default_rng(net.n)
        inst = random_k_subsets(net, max(2, net.n // 3), 2, rng)
        original = resolve_scheduler(
            topology=inst.network.topology.name
        ).schedule(inst, rng)
        compacted = compact_schedule(original)
        compacted.validate()
        execute(compacted)
        assert compacted.makespan <= original.makespan
        assert compacted.meta["compacted_from"] == original.makespan

    def test_preserves_per_object_order(self):
        rng = np.random.default_rng(0)
        inst = random_k_subsets(clique(20), w=5, k=2, rng=rng)
        original = GreedyScheduler().schedule(inst)
        compacted = compact_schedule(original)
        for obj in inst.objects:
            orig_order = [
                t.tid
                for t in sorted(
                    inst.users(obj), key=lambda t: original.time_of(t.tid)
                )
            ]
            new_order = [
                t.tid
                for t in sorted(
                    inst.users(obj),
                    key=lambda t: (compacted.time_of(t.tid), t.tid),
                )
            ]
            assert orig_order == new_order

    def test_idempotent(self):
        rng = np.random.default_rng(1)
        inst = random_k_subsets(grid(5), w=5, k=2, rng=rng)
        once = compact_schedule(GreedyScheduler().schedule(inst))
        twice = compact_schedule(once)
        assert once.commit_times == twice.commit_times

    def test_compacts_conservative_coloring(self):
        # hot object on a line: colouring spaces commits by h_max = span,
        # compaction restores distance-proportional spacing
        rng = np.random.default_rng(2)
        inst = hot_object_instance(line(16), w=4, k=1, rng=rng)
        original = GreedyScheduler().schedule(inst)
        compacted = compact_schedule(original)
        assert compacted.makespan < original.makespan

    def test_greedy_compact_flag(self):
        rng = np.random.default_rng(3)
        inst = random_k_subsets(clique(16), w=4, k=2, rng=rng)
        plain = GreedyScheduler().schedule(inst)
        flagged = GreedyScheduler(compact=True).schedule(inst)
        flagged.validate()
        assert flagged.makespan <= plain.makespan
        assert "compacted_from" in flagged.meta

    def test_still_above_lower_bound(self):
        from repro.bounds import makespan_lower_bound

        rng = np.random.default_rng(4)
        inst = random_k_subsets(grid(6), w=6, k=2, rng=rng)
        compacted = GreedyScheduler(compact=True).schedule(inst)
        assert compacted.makespan >= makespan_lower_bound(inst)
