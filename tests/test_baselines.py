"""Unit tests for the baseline list schedulers."""

import numpy as np
import pytest

from repro.baselines import (
    ListScheduler,
    RandomOrderScheduler,
    SequentialScheduler,
    TSPOrderScheduler,
)
from repro.core import Instance, Transaction
from repro.network import clique, line
from repro.sim import execute
from repro.workloads import random_k_subsets


ALL = [
    ListScheduler(),
    SequentialScheduler(),
    RandomOrderScheduler(),
    TSPOrderScheduler(),
]


class TestFeasibility:
    @pytest.mark.parametrize("sched", ALL, ids=lambda s: s.name)
    def test_feasible_on_random_instances(self, sched):
        for seed in range(4):
            rng = np.random.default_rng(seed)
            inst = random_k_subsets(line(14), w=4, k=2, rng=rng)
            s = sched.schedule(inst, rng)
            s.validate()
            execute(s)

    @pytest.mark.parametrize("sched", ALL, ids=lambda s: s.name)
    def test_feasible_on_clique(self, sched):
        rng = np.random.default_rng(9)
        inst = random_k_subsets(clique(12), w=5, k=3, rng=rng)
        sched.schedule(inst, rng).validate()


class TestSequential:
    def test_one_commit_per_step(self):
        rng = np.random.default_rng(0)
        inst = random_k_subsets(clique(10), w=4, k=2, rng=rng)
        s = SequentialScheduler().schedule(inst)
        times = sorted(s.commit_times.values())
        assert len(set(times)) == len(times)

    def test_independent_transactions_still_serialized(self):
        txns = [Transaction(i, i, {i}) for i in range(5)]
        inst = Instance(clique(5), txns, {i: i for i in range(5)})
        s = SequentialScheduler().schedule(inst)
        assert s.makespan == 5


class TestListScheduling:
    def test_independent_transactions_parallel(self):
        txns = [Transaction(i, i, {i}) for i in range(5)]
        inst = Instance(clique(5), txns, {i: i for i in range(5)})
        s = ListScheduler().schedule(inst)
        assert s.makespan == 1

    def test_shared_object_serializes_with_distance(self):
        txns = [Transaction(0, 0, {0}), Transaction(1, 4, {0})]
        inst = Instance(line(5), txns, {0: 0})
        s = ListScheduler().schedule(inst)
        assert s.time_of(1) - s.time_of(0) >= 4

    def test_commit_times_monotone_along_shared_chain(self):
        rng = np.random.default_rng(1)
        inst = random_k_subsets(clique(15), w=3, k=2, rng=rng)
        s = ListScheduler().schedule(inst)
        for obj in inst.objects:
            users = sorted(inst.users(obj), key=lambda t: s.time_of(t.tid))
            times = [s.time_of(t.tid) for t in users]
            assert times == sorted(set(times))


class TestRandomOrder:
    def test_seeded_reproducibility(self):
        rng_a = np.random.default_rng(5)
        rng_b = np.random.default_rng(5)
        inst = random_k_subsets(clique(10), w=4, k=2, rng=np.random.default_rng(0))
        sa = RandomOrderScheduler().schedule(inst, rng_a)
        sb = RandomOrderScheduler().schedule(inst, rng_b)
        assert sa.commit_times == sb.commit_times

    def test_works_without_rng(self):
        inst = random_k_subsets(
            clique(8), w=3, k=2, rng=np.random.default_rng(1)
        )
        RandomOrderScheduler().schedule(inst).validate()


class TestTSPOrder:
    def test_hottest_object_users_lead(self):
        # object 0 is used by everyone; priority should start with its walk
        txns = [Transaction(i, i, {0}) for i in range(6)]
        inst = Instance(line(6), txns, {0: 0})
        order = TSPOrderScheduler().priority(inst, None)
        assert sorted(order) == list(range(6))
        # walk from node 0 visits users in line order
        assert order == [0, 1, 2, 3, 4, 5]

    def test_single_user_falls_back_to_id_order(self):
        txns = [Transaction(0, 0, {0}), Transaction(1, 1, {1})]
        inst = Instance(clique(3), txns, {0: 0, 1: 1})
        assert TSPOrderScheduler().priority(inst, None) == [0, 1]

    def test_non_walk_members_appended(self):
        txns = [
            Transaction(0, 0, {0}),
            Transaction(1, 1, {0}),
            Transaction(2, 2, {1}),
        ]
        inst = Instance(clique(4), txns, {0: 0, 1: 2})
        order = TSPOrderScheduler().priority(inst, None)
        assert set(order) == {0, 1, 2}
        assert order.index(2) == 2
