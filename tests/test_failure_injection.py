"""Failure injection: corrupted schedules and payloads must be rejected.

Systematically mutates feasible artifacts -- commit times, lock
intervals, replica timings, serialized payloads -- and asserts that the
validators reject every corruption, and that the static checker and the
simulator always agree on the verdict.
"""

import json

import numpy as np
import pytest

from repro.controlflow import ControlFlowScheduler, LockInterval
from repro.core import GreedyScheduler, Schedule
from repro.errors import InfeasibleScheduleError, ReproError
from repro.io import schedule_from_dict, schedule_to_dict
from repro.network import grid, line
from repro.replication import (
    ReplicatedGreedyScheduler,
    ReplicatedSchedule,
    random_rw_instance,
)
from repro.sim import execute
from repro.workloads import random_k_subsets, root_rng


def conflicting_pairs(inst):
    """Pairs of transactions sharing an object."""
    pairs = set()
    for obj in inst.objects:
        users = inst.users(obj)
        for i, a in enumerate(users):
            for b in users[i + 1 :]:
                pairs.add((a.tid, b.tid))
    return pairs


class TestCommitTimeMutations:
    @pytest.fixture
    def good(self):
        rng = root_rng(0)
        inst = random_k_subsets(grid(5), w=5, k=2, rng=rng)
        return GreedyScheduler().schedule(inst)

    def test_every_conflicting_commit_pulled_to_one_is_rejected(self, good):
        inst = good.instance
        pairs = conflicting_pairs(inst)
        assert pairs, "fixture must have conflicts"
        rejected = 0
        for a, b in sorted(pairs)[:20]:
            commits = dict(good.commit_times)
            commits[b] = commits[a]  # simultaneous conflicting commits
            bad = Schedule(inst, commits)
            static_ok = bad.is_feasible()
            try:
                execute(bad)
                engine_ok = True
            except InfeasibleScheduleError:
                engine_ok = False
            assert static_ok == engine_ok, "checkers must agree"
            if not static_ok:
                rejected += 1
        assert rejected > 0

    def test_shifting_late_user_earlier_than_travel_rejected(self, good):
        inst = good.instance
        # find an object leg with positive distance, tighten it below
        for obj, visits in good.itineraries():
            for a, b in zip(visits, visits[1:]):
                d = inst.network.dist(a.node, b.node)
                if b.tid >= 0 and a.tid >= 0 and d >= 2:
                    commits = dict(good.commit_times)
                    commits[b.tid] = commits[a.tid] + d - 1
                    bad = Schedule(inst, commits)
                    if not bad.is_feasible():
                        with pytest.raises(InfeasibleScheduleError):
                            execute(bad)
                        return
        pytest.skip("no tightenable leg in fixture")

    def test_uniform_shift_preserves_feasibility(self, good):
        # sanity: a uniform +10 shift must remain feasible
        shifted = Schedule(
            good.instance,
            {t: c + 10 for t, c in good.commit_times.items()},
        )
        shifted.validate()
        execute(shifted)


class TestReplicatedMutations:
    def test_reader_pulled_before_delivery_rejected(self):
        rng = root_rng(1)
        inst = random_rw_instance(line(12), w=4, k=2,
                                  write_fraction=0.5, rng=rng)
        good = ReplicatedGreedyScheduler().schedule(inst)
        good.validate()
        # pull every transaction individually to t=1; most mutations must
        # break something, and validate must catch each break
        caught = 0
        for tid in good.commit_times:
            commits = dict(good.commit_times)
            if commits[tid] == 1:
                continue
            commits[tid] = 1
            bad = ReplicatedSchedule(inst, commits)
            if not bad.is_feasible():
                caught += 1
        assert caught > 0


class TestControlFlowMutations:
    def test_shrunken_lock_interval_rejected(self):
        rng = root_rng(2)
        inst = random_k_subsets(grid(4), w=4, k=2, rng=rng)
        good = ControlFlowScheduler("rpc").schedule(inst)
        good.validate()
        # shrink one hold below its commit
        (key, iv) = next(iter(good.locks.items()))
        good.locks[key] = LockInterval(
            iv.tid, iv.obj, iv.acquire, good.commit_times[iv.tid]
        )
        with pytest.raises(InfeasibleScheduleError):
            good.validate()

    def test_overlapping_injected_hold_rejected(self):
        rng = root_rng(3)
        inst = random_k_subsets(grid(4), w=3, k=2, rng=rng)
        good = ControlFlowScheduler("rpc").schedule(inst)
        # find two holds of the same object and stretch the earlier over
        # the later
        by_obj = {}
        for (tid, obj), iv in good.locks.items():
            by_obj.setdefault(obj, []).append(iv)
        for obj, ivs in by_obj.items():
            if len(ivs) >= 2:
                ivs.sort(key=lambda iv: iv.acquire)
                first = ivs[0]
                good.locks[(first.tid, obj)] = LockInterval(
                    first.tid, obj, first.acquire, ivs[1].acquire + 1
                )
                with pytest.raises(InfeasibleScheduleError):
                    good.validate()
                return
        pytest.skip("no shared object in fixture")


class TestPayloadCorruption:
    @pytest.fixture
    def payload(self):
        rng = root_rng(4)
        inst = random_k_subsets(line(8), w=3, k=2, rng=rng)
        return schedule_to_dict(GreedyScheduler().schedule(inst))

    def test_missing_commit_rejected(self, payload):
        first = next(iter(payload["commit_times"]))
        del payload["commit_times"][first]
        with pytest.raises(ReproError):
            schedule_from_dict(payload)

    def test_negative_commit_rejected(self, payload):
        first = next(iter(payload["commit_times"]))
        payload["commit_times"][first] = -3
        with pytest.raises(ReproError):
            schedule_from_dict(payload)

    def test_dangling_object_home_rejected(self, payload):
        del payload["instance"]["object_homes"]["0"]
        with pytest.raises(ReproError):
            schedule_from_dict(payload)

    def test_duplicate_node_rejected(self, payload):
        txns = payload["instance"]["transactions"]
        txns[1]["node"] = txns[0]["node"]
        with pytest.raises(ReproError):
            schedule_from_dict(payload)

    def test_edge_corruption_rejected(self, payload):
        payload["instance"]["network"]["edges"][0][2] = 0  # zero weight
        with pytest.raises(ReproError):
            schedule_from_dict(payload)

    def test_round_trip_through_json_text(self, payload):
        # full fidelity through actual JSON text, not just dicts
        text = json.dumps(payload)
        again = schedule_from_dict(json.loads(text))
        again.validate()
