"""Failure injection: corrupted schedules and payloads must be rejected.

Systematically mutates feasible artifacts -- commit times, lock
intervals, replica timings, serialized payloads -- and asserts that the
validators reject every corruption, and that the static checker and the
simulator always agree on the verdict.
"""

import json

import numpy as np
import pytest

from repro.controlflow import ControlFlowScheduler, LockInterval
from repro.core import GreedyScheduler, Schedule
from repro.errors import FaultError, InfeasibleScheduleError, ReproError
from repro.faults import (
    DelaySpike,
    FaultPlan,
    LinkFailure,
    NodeCrash,
    ObjectStall,
    RetryPolicy,
    faulty_execute,
    random_fault_plan,
)
from repro.io import schedule_from_dict, schedule_to_dict
from repro.network import grid, line
from repro.replication import (
    ReplicatedGreedyScheduler,
    ReplicatedSchedule,
    random_rw_instance,
)
from repro.sim import execute
from repro.workloads import random_k_subsets, root_rng


def conflicting_pairs(inst):
    """Pairs of transactions sharing an object."""
    pairs = set()
    for obj in inst.objects:
        users = inst.users(obj)
        for i, a in enumerate(users):
            for b in users[i + 1 :]:
                pairs.add((a.tid, b.tid))
    return pairs


class TestCommitTimeMutations:
    @pytest.fixture
    def good(self):
        rng = root_rng(0)
        inst = random_k_subsets(grid(5), w=5, k=2, rng=rng)
        return GreedyScheduler().schedule(inst)

    def test_every_conflicting_commit_pulled_to_one_is_rejected(self, good):
        inst = good.instance
        pairs = conflicting_pairs(inst)
        assert pairs, "fixture must have conflicts"
        rejected = 0
        for a, b in sorted(pairs)[:20]:
            commits = dict(good.commit_times)
            commits[b] = commits[a]  # simultaneous conflicting commits
            bad = Schedule(inst, commits)
            static_ok = bad.is_feasible()
            try:
                execute(bad)
                engine_ok = True
            except InfeasibleScheduleError:
                engine_ok = False
            assert static_ok == engine_ok, "checkers must agree"
            if not static_ok:
                rejected += 1
        assert rejected > 0

    def test_shifting_late_user_earlier_than_travel_rejected(self, good):
        inst = good.instance
        # find an object leg with positive distance, tighten it below
        for obj, visits in good.itineraries():
            for a, b in zip(visits, visits[1:]):
                d = inst.network.dist(a.node, b.node)
                if b.tid >= 0 and a.tid >= 0 and d >= 2:
                    commits = dict(good.commit_times)
                    commits[b.tid] = commits[a.tid] + d - 1
                    bad = Schedule(inst, commits)
                    if not bad.is_feasible():
                        with pytest.raises(InfeasibleScheduleError):
                            execute(bad)
                        return
        pytest.skip("no tightenable leg in fixture")

    def test_uniform_shift_preserves_feasibility(self, good):
        # sanity: a uniform +10 shift must remain feasible
        shifted = Schedule(
            good.instance,
            {t: c + 10 for t, c in good.commit_times.items()},
        )
        shifted.validate()
        execute(shifted)


class TestReplicatedMutations:
    def test_reader_pulled_before_delivery_rejected(self):
        rng = root_rng(1)
        inst = random_rw_instance(line(12), w=4, k=2,
                                  write_fraction=0.5, rng=rng)
        good = ReplicatedGreedyScheduler().schedule(inst)
        good.validate()
        # pull every transaction individually to t=1; most mutations must
        # break something, and validate must catch each break
        caught = 0
        for tid in good.commit_times:
            commits = dict(good.commit_times)
            if commits[tid] == 1:
                continue
            commits[tid] = 1
            bad = ReplicatedSchedule(inst, commits)
            if not bad.is_feasible():
                caught += 1
        assert caught > 0


class TestControlFlowMutations:
    def test_shrunken_lock_interval_rejected(self):
        rng = root_rng(2)
        inst = random_k_subsets(grid(4), w=4, k=2, rng=rng)
        good = ControlFlowScheduler("rpc").schedule(inst)
        good.validate()
        # shrink one hold below its commit
        (key, iv) = next(iter(good.locks.items()))
        good.locks[key] = LockInterval(
            iv.tid, iv.obj, iv.acquire, good.commit_times[iv.tid]
        )
        with pytest.raises(InfeasibleScheduleError):
            good.validate()

    def test_overlapping_injected_hold_rejected(self):
        rng = root_rng(3)
        inst = random_k_subsets(grid(4), w=3, k=2, rng=rng)
        good = ControlFlowScheduler("rpc").schedule(inst)
        # find two holds of the same object and stretch the earlier over
        # the later
        by_obj = {}
        for (tid, obj), iv in good.locks.items():
            by_obj.setdefault(obj, []).append(iv)
        for obj, ivs in by_obj.items():
            if len(ivs) >= 2:
                ivs.sort(key=lambda iv: iv.acquire)
                first = ivs[0]
                good.locks[(first.tid, obj)] = LockInterval(
                    first.tid, obj, first.acquire, ivs[1].acquire + 1
                )
                with pytest.raises(InfeasibleScheduleError):
                    good.validate()
                return
        pytest.skip("no shared object in fixture")


class TestPayloadCorruption:
    @pytest.fixture
    def payload(self):
        rng = root_rng(4)
        inst = random_k_subsets(line(8), w=3, k=2, rng=rng)
        return schedule_to_dict(GreedyScheduler().schedule(inst))

    def test_missing_commit_rejected(self, payload):
        first = next(iter(payload["commit_times"]))
        del payload["commit_times"][first]
        with pytest.raises(ReproError):
            schedule_from_dict(payload)

    def test_negative_commit_rejected(self, payload):
        first = next(iter(payload["commit_times"]))
        payload["commit_times"][first] = -3
        with pytest.raises(ReproError):
            schedule_from_dict(payload)

    def test_dangling_object_home_rejected(self, payload):
        del payload["instance"]["object_homes"]["0"]
        with pytest.raises(ReproError):
            schedule_from_dict(payload)

    def test_duplicate_node_rejected(self, payload):
        txns = payload["instance"]["transactions"]
        txns[1]["node"] = txns[0]["node"]
        with pytest.raises(ReproError):
            schedule_from_dict(payload)

    def test_edge_corruption_rejected(self, payload):
        payload["instance"]["network"]["edges"][0][2] = 0  # zero weight
        with pytest.raises(ReproError):
            schedule_from_dict(payload)

    def test_round_trip_through_json_text(self, payload):
        # full fidelity through actual JSON text, not just dicts
        text = json.dumps(payload)
        again = schedule_from_dict(json.loads(text))
        again.validate()


class TestRuntimeFaultInjection:
    """Faults injected at replay time: absorbed or typed, never a crash.

    Every fault class thrown at ``faulty_execute`` must either be absorbed
    (the trace completes, possibly with losses) or surface as a typed
    :class:`FaultError` -- a bare KeyError/AssertionError escaping the
    engine is a bug.
    """

    @pytest.fixture
    def sched(self):
        rng = root_rng(5)
        inst = random_k_subsets(grid(5), w=6, k=2, rng=rng)
        return GreedyScheduler().schedule(inst)

    def _replay(self, sched, plan, policy=None):
        try:
            return faulty_execute(sched, plan, policy=policy)
        except FaultError:
            return None  # typed surfacing is an acceptable outcome
        # anything else propagates and fails the test

    def test_every_single_link_failure_absorbed(self, sched):
        net = sched.instance.network
        for u, v, _ in net.edges():
            for end in (sched.makespan + 1, None):
                plan = FaultPlan([LinkFailure(u, v, 1, end)])
                trace = self._replay(sched, plan)
                if trace is not None:
                    assert trace.committed + len(trace.lost) == sched.instance.m
                    if end is not None:
                        # repairable failure: nothing may be lost
                        assert trace.committed == sched.instance.m

    def test_every_single_node_crash_absorbed(self, sched):
        horizon = sched.makespan
        for node in range(sched.instance.network.n):
            for t in (0, horizon // 2, horizon + 1):
                plan = FaultPlan([NodeCrash(node, t)])
                trace = self._replay(sched, plan)
                if trace is not None:
                    assert trace.committed + len(trace.lost) == sched.instance.m

    def test_every_object_stall_absorbed(self, sched):
        for obj in sched.instance.objects:
            plan = FaultPlan([ObjectStall(obj, 1, sched.makespan + 2)])
            trace = self._replay(sched, plan)
            if trace is not None:
                assert trace.committed == sched.instance.m

    def test_delay_spikes_absorbed(self, sched):
        net = sched.instance.network
        events = [
            DelaySpike(u, v, 1, sched.makespan + 1, 3.0)
            for u, v, _ in net.edges()
        ]
        trace = self._replay(sched, FaultPlan(events))
        if trace is not None:
            assert trace.committed == sched.instance.m
            assert trace.makespan >= sched.makespan

    def test_exhausted_retries_surface_as_fault_error(self, sched):
        # a stall longer than the whole retry budget must raise FaultError,
        # not hang or die with an internal exception
        obj = sched.instance.objects[0]
        plan = FaultPlan([ObjectStall(obj, 0, 10**9)])
        policy = RetryPolicy(max_retries=3, max_wait=4)
        with pytest.raises(FaultError):
            faulty_execute(sched, plan, policy=policy)

    def test_random_storm_never_raises_untyped(self, sched):
        # a hostile storm of every fault kind at once
        for seed in range(6):
            rng = np.random.default_rng(seed)
            plan = random_fault_plan(
                sched.instance.network,
                sched.makespan,
                rng,
                intensity=4.0,
                crash_rate=0.1,
                permanent_fraction=0.3,
                objects=sched.instance.objects,
            )
            trace = self._replay(sched, plan)
            if trace is not None:
                assert trace.committed + len(trace.lost) == sched.instance.m

    def test_malformed_events_rejected_with_fault_error(self):
        for bad in (
            lambda: FaultPlan([LinkFailure(0, 1, 5, 5)]),
            lambda: FaultPlan([NodeCrash(0, -1)]),
            lambda: FaultPlan([ObjectStall(0, 3, 2)]),
            lambda: FaultPlan([DelaySpike(0, 1, 0, 4, 0.5)]),
            lambda: FaultPlan(["not-an-event"]),
        ):
            with pytest.raises(FaultError):
                bad()
