"""Unit tests for scheduler dispatch and the registry."""

import numpy as np
import pytest

from repro.core import (
    available_schedulers,
    get_scheduler,
    schedule_instance,
    scheduler_for,
)
from repro.core.cluster import ClusterScheduler
from repro.core.greedy import CliqueScheduler, DiameterScheduler, GreedyScheduler
from repro.core.grid import GridScheduler
from repro.core.line import LineScheduler
from repro.core.star import StarScheduler
from repro.errors import SchedulingError
from repro.network import (
    butterfly,
    clique,
    cluster,
    ddim_grid,
    grid,
    hypercube,
    line,
    star,
)
from repro.network.graph import Network
from repro.workloads import random_k_subsets


CASES = [
    (clique(8), CliqueScheduler),
    (hypercube(3), DiameterScheduler),
    (butterfly(2), DiameterScheduler),
    (ddim_grid([2, 2, 2]), DiameterScheduler),
    (line(12), LineScheduler),
    (grid(4), GridScheduler),
    (cluster(3, 4), ClusterScheduler),
    (star(3, 5), StarScheduler),
]


class TestDispatch:
    @pytest.mark.parametrize(
        "net,cls", CASES, ids=[n.topology.name for n, _ in CASES]
    )
    def test_scheduler_for_matches_topology(self, net, cls):
        rng = np.random.default_rng(0)
        inst = random_k_subsets(net, w=max(2, net.n // 2), k=2, rng=rng)
        assert isinstance(scheduler_for(inst), cls)

    def test_generic_falls_back_to_greedy(self):
        net = Network(3, [(0, 1, 1), (1, 2, 1)])
        rng = np.random.default_rng(1)
        inst = random_k_subsets(net, w=2, k=1, rng=rng)
        assert isinstance(scheduler_for(inst), GreedyScheduler)

    @pytest.mark.parametrize(
        "net,cls", CASES, ids=[n.topology.name for n, _ in CASES]
    )
    def test_schedule_instance_end_to_end(self, net, cls):
        rng = np.random.default_rng(2)
        inst = random_k_subsets(net, w=max(2, net.n // 2), k=2, rng=rng)
        s = schedule_instance(inst, rng)
        s.validate()


class TestRegistry:
    def test_expected_names_registered(self):
        names = available_schedulers()
        for expected in (
            "greedy", "clique", "diameter", "line", "grid", "cluster",
            "star", "sequential", "random-order", "tsp-order",
        ):
            assert expected in names

    def test_get_scheduler_by_name(self):
        assert isinstance(get_scheduler("line"), LineScheduler)
        assert isinstance(get_scheduler("greedy", order="degree"), GreedyScheduler)

    def test_unknown_name_raises(self):
        with pytest.raises(SchedulingError, match="unknown scheduler"):
            get_scheduler("does-not-exist")
