"""Unit tests for scheduler dispatch and the registry."""

import numpy as np
import pytest

from repro.core import (
    available_schedulers,
    get_scheduler,
    schedule_instance,
    scheduler_for,
)
from repro.core.dispatch import resolve_scheduler, schedule
from repro.core.cluster import ClusterScheduler
from repro.core.greedy import CliqueScheduler, DiameterScheduler, GreedyScheduler
from repro.core.grid import GridScheduler
from repro.core.line import LineScheduler
from repro.core.star import StarScheduler
from repro.errors import SchedulingError
from repro.network import (
    butterfly,
    clique,
    cluster,
    ddim_grid,
    grid,
    hypercube,
    line,
    star,
)
from repro.network.graph import Network
from repro.workloads import random_k_subsets


CASES = [
    (clique(8), CliqueScheduler),
    (hypercube(3), DiameterScheduler),
    (butterfly(2), DiameterScheduler),
    (ddim_grid([2, 2, 2]), DiameterScheduler),
    (line(12), LineScheduler),
    (grid(4), GridScheduler),
    (cluster(3, 4), ClusterScheduler),
    (star(3, 5), StarScheduler),
]


class TestDispatch:
    @pytest.mark.parametrize(
        "net,cls", CASES, ids=[n.topology.name for n, _ in CASES]
    )
    def test_resolved_scheduler_matches_topology(self, net, cls):
        rng = np.random.default_rng(0)
        inst = random_k_subsets(net, w=max(2, net.n // 2), k=2, rng=rng)
        assert isinstance(
            resolve_scheduler(topology=inst.network.topology.name), cls
        )

    def test_generic_falls_back_to_greedy(self):
        net = Network(3, [(0, 1, 1), (1, 2, 1)])
        rng = np.random.default_rng(1)
        inst = random_k_subsets(net, w=2, k=1, rng=rng)
        assert isinstance(
            resolve_scheduler(topology=inst.network.topology.name),
            GreedyScheduler,
        )

    @pytest.mark.parametrize(
        "net,cls", CASES, ids=[n.topology.name for n, _ in CASES]
    )
    def test_schedule_end_to_end(self, net, cls):
        rng = np.random.default_rng(2)
        inst = random_k_subsets(net, w=max(2, net.n // 2), k=2, rng=rng)
        s = schedule(inst, rng=rng)
        s.validate()


class TestRegistry:
    def test_expected_names_registered(self):
        names = available_schedulers()
        for expected in (
            "greedy", "clique", "diameter", "line", "grid", "cluster",
            "star", "sequential", "random-order", "tsp-order",
        ):
            assert expected in names

    def test_get_scheduler_by_name(self):
        assert isinstance(get_scheduler("line"), LineScheduler)
        assert isinstance(get_scheduler("greedy", order="degree"), GreedyScheduler)

    def test_unknown_name_raises(self):
        with pytest.raises(SchedulingError, match="unknown scheduler"):
            get_scheduler("does-not-exist")


class TestScheduleFacade:
    """repro.schedule(): the one entry point wrapping the registry."""

    @pytest.mark.parametrize(
        "net,cls", CASES, ids=[n.topology.name for n, _ in CASES]
    )
    def test_auto_algo_end_to_end(self, net, cls):
        import repro

        rng = np.random.default_rng(3)
        inst = random_k_subsets(net, w=max(2, net.n // 2), k=2, rng=rng)
        sched = repro.schedule(inst, rng=rng)
        sched.validate()

    def test_explicit_algo_overrides_topology(self):
        import repro
        from repro.core.dispatch import resolve_scheduler

        net = grid(4)
        rng = np.random.default_rng(4)
        inst = random_k_subsets(net, w=8, k=2, rng=rng)
        sched = repro.schedule(inst, algo="greedy", rng=rng)
        sched.validate()
        assert isinstance(
            resolve_scheduler("greedy", topology="grid"), GreedyScheduler
        )

    def test_baseline_algos_fall_through_to_registry(self):
        import repro

        net = line(6)
        rng = np.random.default_rng(5)
        inst = random_k_subsets(net, w=4, k=2, rng=rng)
        repro.schedule(inst, algo="sequential", rng=rng).validate()

    def test_kernel_typo_fails_fast(self):
        import repro

        net = clique(4)
        rng = np.random.default_rng(6)
        inst = random_k_subsets(net, w=4, k=2, rng=rng)
        with pytest.raises(SchedulingError, match="kernel"):
            repro.schedule(inst, kernel="simd")

    def test_foreign_network_rejected(self):
        import repro

        rng = np.random.default_rng(7)
        inst = random_k_subsets(clique(4), w=4, k=2, rng=rng)
        with pytest.raises(SchedulingError, match="instance's own network"):
            repro.schedule(inst, network=clique(5))

    def test_own_network_accepted(self):
        import repro

        rng = np.random.default_rng(8)
        inst = random_k_subsets(clique(4), w=4, k=2, rng=rng)
        repro.schedule(inst, network=inst.network, rng=rng).validate()

    def test_reference_and_vectorized_agree_through_facade(self):
        import repro

        net = grid(4)
        rng = np.random.default_rng(9)
        inst = random_k_subsets(net, w=8, k=2, rng=rng)
        ref = repro.schedule(inst, kernel="reference")
        vec = repro.schedule(inst, kernel="vectorized")
        assert ref.commit_times == vec.commit_times


class TestSchedulerInfo:
    def test_registry_mirrors_topologies(self):
        from repro.core import SCHEDULER_INFO

        covered = {t for info in SCHEDULER_INFO.values()
                   for t in info.topologies}
        for name in ("clique", "line", "grid", "cluster", "hypercube",
                     "butterfly", "star", "ddim-grid", "torus"):
            assert name in covered

    def test_every_entry_has_a_bound_and_factory(self):
        from repro.core import SCHEDULER_INFO

        for name, info in SCHEDULER_INFO.items():
            assert info.name == name
            assert info.bound
            sched = info.make()
            assert hasattr(sched, "schedule")

    def test_kernel_forwarded_only_when_supported(self):
        from repro.core import SCHEDULER_INFO

        greedy = SCHEDULER_INFO["greedy"].make(kernel="reference")
        assert greedy.kernel == "reference"
        # LineScheduler has no kernel parameter; make() must not pass one
        SCHEDULER_INFO["line"].make(kernel="reference")


class TestIncrementalDispatch:
    """mode= on the facade and the incremental registry entries."""

    def test_incremental_variants_registered(self):
        from repro.core import SCHEDULER_INFO

        for name in ("incremental", "incremental-clique",
                     "incremental-diameter"):
            info = SCHEDULER_INFO[name]
            assert info.topologies == ()
            assert "kernel" in info.capabilities
            sched = info.make()
            assert sched.name == name

    def test_incremental_algo_matches_greedy(self):
        net = grid(4)
        rng = np.random.default_rng(12)
        inst = random_k_subsets(net, w=8, k=2, rng=rng)
        batch = schedule(inst, algo="greedy")
        inc = schedule(inst, algo="incremental")
        assert inc.commit_times == batch.commit_times
        assert inc.meta["engine"] == "incremental"
        for key in ("colors_used", "h_max", "delta", "gamma", "offset"):
            assert inc.meta[key] == batch.meta[key]

    def test_mode_incremental_on_plain_algo(self):
        net = clique(6)
        rng = np.random.default_rng(13)
        inst = random_k_subsets(net, w=5, k=2, rng=rng)
        batch = schedule(inst, algo="clique")
        inc = schedule(inst, algo="clique", mode="incremental")
        assert inc.commit_times == batch.commit_times

    def test_incremental_algo_with_batch_mode_contradicts(self):
        from repro.errors import SessionError

        net = clique(4)
        rng = np.random.default_rng(14)
        inst = random_k_subsets(net, w=3, k=2, rng=rng)
        with pytest.raises(SessionError, match="mode"):
            schedule(inst, algo="incremental", mode="batch")

    def test_unknown_mode_rejected(self):
        net = clique(4)
        rng = np.random.default_rng(15)
        inst = random_k_subsets(net, w=3, k=2, rng=rng)
        with pytest.raises(SchedulingError, match="mode"):
            schedule(inst, mode="turbo")


class TestDeprecationShims:
    def test_scheduler_for_warns_and_delegates(self):
        net = line(8)
        rng = np.random.default_rng(10)
        inst = random_k_subsets(net, w=4, k=2, rng=rng)
        with pytest.warns(DeprecationWarning, match="resolve_scheduler"):
            sched = scheduler_for(inst)
        assert isinstance(sched, LineScheduler)

    def test_schedule_instance_warns_and_delegates(self):
        net = clique(5)
        rng = np.random.default_rng(11)
        inst = random_k_subsets(net, w=4, k=2, rng=rng)
        with pytest.warns(DeprecationWarning, match="repro.schedule"):
            schedule_instance(inst, rng).validate()
