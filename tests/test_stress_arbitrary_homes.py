"""Stress tests: arbitrary object homes and larger random configurations.

The paper usually assumes objects start at requesters; the schedulers
must stay *correct* (if not within the same constants) when homes are
arbitrary -- e.g. objects parked at a directory node.  These tests
scatter homes uniformly over the whole graph and validate every topology
scheduler end-to-end, plus larger star/cluster geometries than the unit
tests exercise.
"""

import numpy as np
import pytest

from repro.core import Instance, Transaction
from repro.core.dispatch import schedule
from repro.network import (
    butterfly,
    clique,
    cluster,
    grid,
    hypercube,
    line,
    star,
    torus,
)
from repro.sim import execute


def arbitrary_home_instance(net, w, k, rng):
    """k-subset workload with homes scattered over the whole graph."""
    nodes = list(net.nodes())
    txns = [
        Transaction(i, node, rng.choice(w, size=k, replace=False))
        for i, node in enumerate(nodes)
    ]
    homes = {o: int(rng.integers(0, net.n)) for o in range(w)}
    return Instance(net, txns, homes)


NETS = [
    clique(20),
    line(48),
    grid(7),
    cluster(4, 6, gamma=9),
    star(5, 12),
    hypercube(5),
    butterfly(3),
    torus(5),
]


@pytest.mark.parametrize("net", NETS, ids=[n.topology.name for n in NETS])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_arbitrary_homes_all_topologies(net, seed):
    rng = np.random.default_rng(seed * 1000 + net.n)
    inst = arbitrary_home_instance(net, w=max(3, net.n // 4), k=2, rng=rng)
    s = schedule(inst, rng=rng)
    s.validate()
    execute(s)


@pytest.mark.parametrize("seed", range(5))
def test_larger_star_geometries(seed):
    rng = np.random.default_rng(seed)
    net = star(12, 33)  # eta = 6 rings, truncated last segment
    inst = arbitrary_home_instance(net, w=32, k=3, rng=rng)
    s = schedule(inst, rng=rng)
    s.validate()
    execute(s)


@pytest.mark.parametrize("seed", range(5))
def test_larger_cluster_geometries(seed):
    rng = np.random.default_rng(seed)
    net = cluster(9, 7, gamma=15)
    inst = arbitrary_home_instance(net, w=20, k=3, rng=rng)
    s = schedule(inst, rng=rng)
    s.validate()
    execute(s)


def test_single_object_monopoly_on_every_topology():
    # every transaction wants the same single object: total serialization
    for net in NETS:
        txns = [Transaction(i, node, {0}) for i, node in enumerate(net.nodes())]
        inst = Instance(net, txns, {0: 0})
        rng = np.random.default_rng(net.n)
        s = schedule(inst, rng=rng)
        s.validate()
        # all commits strictly ordered (they conflict pairwise)
        times = sorted(s.commit_times.values())
        assert len(set(times)) == len(times)


def test_every_transaction_wants_everything():
    # k = w on a clique: complete conflict graph
    net = clique(10)
    rng = np.random.default_rng(0)
    txns = [Transaction(i, i, set(range(4))) for i in range(10)]
    inst = Instance(net, txns, {o: int(rng.integers(0, 10)) for o in range(4)})
    s = schedule(inst, rng=rng)
    s.validate()
    assert len(set(s.commit_times.values())) == 10
