"""Unit tests for congestion-aware rerouting."""

import numpy as np
import pytest

from repro.core import GreedyScheduler, Instance, Schedule, Transaction
from repro.network import clique, grid, line
from repro.network.graph import Network
from repro.sim import congestion_report, reroute_for_congestion
from repro.workloads import random_k_subsets


class TestReroute:
    def test_paths_respect_deadlines(self):
        rng = np.random.default_rng(0)
        inst = random_k_subsets(grid(6), w=6, k=2, rng=rng)
        s = GreedyScheduler().schedule(inst)
        plan = reroute_for_congestion(s)
        net = inst.network
        for (obj, depart, src, dst), path in plan.paths.items():
            assert path[0] == src and path[-1] == dst
            length = sum(
                net.edge_weight(a, b) for a, b in zip(path, path[1:])
            )
            # find the leg's deadline from the itinerary
            visits = s.itinerary(obj)
            deadline = None
            for a, b in zip(visits, visits[1:]):
                if (a.time, a.node, b.node) == (depart, src, dst):
                    deadline = b.time
            assert deadline is not None
            assert depart + length <= deadline

    def test_never_worse_than_shortest_paths(self):
        rng = np.random.default_rng(1)
        inst = random_k_subsets(grid(6), w=6, k=2, rng=rng)
        s = GreedyScheduler().schedule(inst)
        base_peak = congestion_report(s).max_peak
        plan = reroute_for_congestion(s)
        assert plan.max_peak <= base_peak
        assert plan.total_legs >= plan.detoured_legs >= 0

    def test_detour_resolves_forced_collision(self):
        # diamond: 0-1-3 and 0-2-3; two objects must cross 0->3 in the
        # same window; one should take each side
        net = Network(4, [(0, 1, 1), (1, 3, 1), (0, 2, 1), (2, 3, 1)])
        txns = [
            Transaction(0, 0, {0, 1}),
            Transaction(1, 3, {0, 1}),
        ]
        inst = Instance(net, txns, {0: 0, 1: 0})
        s = Schedule(inst, {0: 1, 1: 3})
        s.validate()
        plan = reroute_for_congestion(s)
        assert plan.max_peak == 1
        assert plan.detoured_legs == 1

    def test_no_slack_keeps_shortest_path(self):
        txns = [Transaction(0, 0, {0}), Transaction(1, 4, {0})]
        inst = Instance(line(5), txns, {0: 0})
        s = Schedule(inst, {0: 1, 1: 5})  # tight: zero slack
        plan = reroute_for_congestion(s)
        (path,) = [p for p in plan.paths.values()]
        assert path == (0, 1, 2, 3, 4)

    def test_empty_when_no_movement(self):
        inst = Instance(clique(2), [Transaction(0, 0, {0})], {0: 0})
        plan = reroute_for_congestion(Schedule(inst, {0: 1}))
        assert plan.total_legs == 0
        assert plan.max_peak == 0

    @pytest.mark.parametrize("seed", range(3))
    def test_peak_counts_match_manual_sweep(self, seed):
        rng = np.random.default_rng(seed)
        inst = random_k_subsets(clique(10), w=4, k=2, rng=rng)
        s = GreedyScheduler().schedule(inst)
        plan = reroute_for_congestion(s)
        # peaks are at least 1 wherever traffic exists
        assert all(v >= 1 for v in plan.peak_concurrency.values())
