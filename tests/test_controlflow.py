"""Unit tests for the control-flow model extension."""

import numpy as np
import pytest

from repro.controlflow import (
    ControlFlowSchedule,
    ControlFlowScheduler,
    LockInterval,
)
from repro.core import Instance, Transaction
from repro.errors import InfeasibleScheduleError
from repro.network import clique, grid, line
from repro.workloads import random_k_subsets, root_rng


def two_txn_instance():
    """Two transactions sharing object 0 homed at node 2 on a 5-line."""
    txns = [Transaction(0, 0, {0}), Transaction(1, 4, {0})]
    return Instance(line(5), txns, {0: 2})


class TestLockInterval:
    def test_overlap_detection(self):
        a = LockInterval(0, 0, 2, 6)
        assert a.overlaps(LockInterval(1, 0, 5, 9))
        assert not a.overlaps(LockInterval(1, 0, 6, 9))  # touching is fine
        assert not a.overlaps(LockInterval(1, 0, 0, 2))


class TestValidation:
    def make(self, locks, starts=None, commits=None):
        inst = two_txn_instance()
        starts = starts or {0: 0, 1: 0}
        commits = commits or {0: 4, 1: 8}
        return ControlFlowSchedule(inst, starts, commits, locks)

    def good_locks(self):
        return {
            (0, 0): LockInterval(0, 0, 2, 6),
            (1, 0): LockInterval(1, 0, 6, 10),
        }

    def test_valid_schedule_passes(self):
        s = self.make(self.good_locks(), commits={0: 4, 1: 8})
        s.validate()
        assert s.makespan == 8

    def test_missing_lock_rejected(self):
        locks = self.good_locks()
        del locks[(1, 0)]
        with pytest.raises(InfeasibleScheduleError, match="no lock"):
            self.make(locks).validate()

    def test_early_acquire_rejected(self):
        # request from node 0 cannot reach home 2 before start + 2
        locks = self.good_locks()
        locks[(0, 0)] = LockInterval(0, 0, 1, 6)
        with pytest.raises(InfeasibleScheduleError, match="request"):
            self.make(locks).validate()

    def test_release_before_commit_rejected(self):
        locks = self.good_locks()
        locks[(0, 0)] = LockInterval(0, 0, 2, 3)
        with pytest.raises(InfeasibleScheduleError, match="strictly contain"):
            self.make(locks, commits={0: 4, 1: 8}).validate()

    def test_overlapping_holds_rejected(self):
        locks = {
            (0, 0): LockInterval(0, 0, 2, 7),
            (1, 0): LockInterval(1, 0, 6, 10),
        }
        with pytest.raises(InfeasibleScheduleError, match="simultaneously"):
            self.make(locks).validate()

    def test_commit_before_start_rejected(self):
        with pytest.raises(InfeasibleScheduleError, match="before its"):
            self.make(self.good_locks(), starts={0: 9, 1: 0}).validate()


class TestSchedulers:
    @pytest.mark.parametrize("mode", ["rpc", "migration", "hybrid"])
    def test_feasible_across_modes_and_topologies(self, mode):
        for net in (clique(12), line(16), grid(4)):
            rng = root_rng(net.n)
            inst = random_k_subsets(net, max(3, net.n // 3), 2, rng)
            s = ControlFlowScheduler(mode).schedule(inst)
            s.validate()
            assert s.mode == mode

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            ControlFlowScheduler("teleport")

    def test_rpc_service_time_is_round_trip(self):
        inst = two_txn_instance()
        s = ControlFlowScheduler("rpc").schedule(inst)
        s.validate()
        # txn 0 at distance 2: commit >= 4 (2*2)
        assert s.commit_times[0] - s.start_times[0] == 4

    def test_migration_walks_to_homes(self):
        txns = [Transaction(0, 0, {0, 1})]
        inst = Instance(line(5), txns, {0: 2, 1: 4})
        s = ControlFlowScheduler("migration").schedule(inst)
        s.validate()
        # walk 0 -> 2 -> 4 has length 4
        assert s.commit_times[0] - s.start_times[0] == 4

    def test_hybrid_never_slower_than_both(self):
        for seed in range(5):
            rng = root_rng(500 + seed)
            inst = random_k_subsets(grid(5), w=6, k=2, rng=rng)
            mk = {
                mode: ControlFlowScheduler(mode).schedule(inst).makespan
                for mode in ("rpc", "migration", "hybrid")
            }
            assert mk["hybrid"] <= max(mk["rpc"], mk["migration"])

    def test_serialization_on_shared_object(self):
        # many transactions on one object: lock holds serialize them
        txns = [Transaction(i, i, {0}) for i in range(6)]
        inst = Instance(clique(6), txns, {0: 0})
        s = ControlFlowScheduler("rpc").schedule(inst)
        s.validate()
        holds = sorted(
            (iv.acquire, iv.release) for (tid, o), iv in s.locks.items()
        )
        for a, b in zip(holds, holds[1:]):
            assert a[1] <= b[0]

    def test_meta_records_migration_fraction(self):
        rng = root_rng(9)
        inst = random_k_subsets(clique(10), w=4, k=2, rng=rng)
        s = ControlFlowScheduler("hybrid").schedule(inst)
        assert 0.0 <= s.meta["migration_fraction"] <= 1.0

    def test_communication_cost_positive(self):
        inst = two_txn_instance()
        for mode in ("rpc", "migration"):
            s = ControlFlowScheduler(mode).schedule(inst)
            assert s.communication_cost > 0
