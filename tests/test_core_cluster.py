"""Unit tests for the cluster scheduler (§6, Theorem 4, Algorithm 1)."""

import numpy as np
import pytest

from repro.core import ClusterScheduler, object_cluster_spread
from repro.core.rounds import theoretical_psi, theoretical_zeta
from repro.errors import TopologyError
from repro.network import clique, cluster
from repro.sim import execute
from repro.workloads import partitioned_instance, random_k_subsets


def cluster_instance(alpha=4, beta=5, gamma=6, cross=0.5, k=2, seed=0):
    net = cluster(alpha, beta, gamma=gamma)
    groups = net.topology.require("clusters")
    rng = np.random.default_rng(seed)
    return partitioned_instance(
        net, groups, objects_per_group=max(k, 3), k=k,
        cross_fraction=cross, rng=rng,
    )


class TestSpread:
    def test_local_objects_sigma_one(self):
        inst = cluster_instance(cross=0.0)
        assert object_cluster_spread(inst) == 1

    def test_shared_objects_raise_sigma(self):
        inst = cluster_instance(cross=1.0, seed=1)
        assert object_cluster_spread(inst) >= 2


class TestApproaches:
    def test_requires_cluster_topology(self):
        rng = np.random.default_rng(0)
        inst = random_k_subsets(clique(8), w=4, k=2, rng=rng)
        with pytest.raises(TopologyError):
            ClusterScheduler().schedule(inst)

    def test_invalid_approach_rejected(self):
        with pytest.raises(ValueError):
            ClusterScheduler(approach=3)

    @pytest.mark.parametrize("approach", [1, 2, "auto"])
    def test_feasible_all_approaches(self, approach):
        inst = cluster_instance(seed=2)
        rng = np.random.default_rng(2)
        s = ClusterScheduler(approach=approach).schedule(inst, rng)
        s.validate()
        execute(s)

    def test_sigma_one_uses_approach1_and_parallelizes(self):
        inst = cluster_instance(alpha=6, beta=4, cross=0.0, seed=3)
        s = ClusterScheduler(approach="auto").schedule(
            inst, np.random.default_rng(3)
        )
        assert s.meta["approach"] == 1
        # clusters run in parallel: far below alpha * beta sequential steps
        assert s.makespan <= 4 * inst.max_k * inst.max_load + 1

    def test_auto_picks_min(self):
        inst = cluster_instance(cross=1.0, seed=4)
        rng = np.random.default_rng(4)
        s = ClusterScheduler(approach="auto").schedule(inst, rng)
        assert s.makespan == min(
            s.meta["approach1_makespan"], s.meta["approach2_makespan"]
        )

    def test_approach2_meta(self):
        inst = cluster_instance(cross=1.0, seed=5)
        rng = np.random.default_rng(5)
        s = ClusterScheduler(approach=2).schedule(inst, rng)
        assert s.meta["approach"] == 2
        assert s.meta["rounds_used"] >= 1
        assert s.meta["round_duration"] == 5 + 6 + 2  # beta + gamma + 2
        assert s.meta["psi"] >= 1

    def test_approach2_deterministic_given_rng(self):
        inst = cluster_instance(cross=1.0, seed=6)
        s1 = ClusterScheduler(approach=2).schedule(
            inst, np.random.default_rng(9)
        )
        s2 = ClusterScheduler(approach=2).schedule(
            inst, np.random.default_rng(9)
        )
        assert s1.commit_times == s2.commit_times

    def test_approach2_fallback_cap(self):
        # with a 1-round cap most transactions spill into the deterministic
        # tail; the schedule must remain feasible
        inst = cluster_instance(cross=1.0, seed=7)
        rng = np.random.default_rng(7)
        s = ClusterScheduler(approach=2, max_rounds_per_phase=1).schedule(
            inst, rng
        )
        s.validate()
        execute(s)

    def test_default_rng_when_none(self):
        inst = cluster_instance(cross=1.0, seed=8)
        s = ClusterScheduler(approach=2).schedule(inst)
        s.validate()


class TestTheoryHelpers:
    def test_psi_monotone_in_sigma(self):
        assert theoretical_psi(1, 100) == 1
        assert theoretical_psi(1000, 100) > theoretical_psi(10, 100)

    def test_zeta_growth_in_k(self):
        assert theoretical_zeta(2, 100) > theoretical_zeta(1, 100)
        assert theoretical_zeta(1, 100) >= 2 * 40

    def test_theorem_ratio_envelope(self):
        inst = cluster_instance(seed=9)
        r = ClusterScheduler.theorem_ratio(inst)
        beta = inst.network.topology.require("beta")
        assert r <= inst.max_k * beta


class TestClusterBoundaryCases:
    def test_single_cluster(self):
        net = cluster(1, 6, gamma=6)
        rng = np.random.default_rng(20)
        inst = random_k_subsets(net, w=4, k=2, rng=rng)
        for approach in (1, 2, "auto"):
            s = ClusterScheduler(approach=approach).schedule(inst, rng)
            s.validate()

    def test_singleton_clusters(self):
        # beta = 1: every "clique" is one node, all traffic over bridges
        net = cluster(5, 1, gamma=3)
        rng = np.random.default_rng(21)
        inst = random_k_subsets(net, w=3, k=2, rng=rng)
        s = ClusterScheduler(approach="auto").schedule(inst, rng)
        s.validate()
        execute(s)

    def test_sparse_transactions_across_clusters(self):
        net = cluster(4, 5, gamma=7)
        rng = np.random.default_rng(22)
        inst = random_k_subsets(net, w=4, k=2, rng=rng, density=0.4)
        s = ClusterScheduler(approach=2).schedule(inst, rng)
        s.validate()
        execute(s)

    def test_huge_gamma(self):
        # very slow fabric: rounds are long but everything stays feasible
        net = cluster(3, 4, gamma=50)
        rng = np.random.default_rng(23)
        inst = random_k_subsets(net, w=4, k=2, rng=rng)
        s = ClusterScheduler(approach=2).schedule(inst, rng)
        s.validate()
        assert s.meta["round_duration"] == 4 + 50 + 2
