"""Tests for the continuous-arrival scheduling service.

Covers the robustness contract end to end: watermark backpressure with
hysteresis (defer / shed / strict), deadline expiry, bounded window retry
under unabsorbable faults, crash handling with typed losses, saturation
detection with shed-mode degradation, the conservation identity
``committed + shed + expired + lost + final_backlog == released``,
same-seed determinism, run_online commit parity on the empty plan,
recorder bit-parity, and JSON round-trips through the report registry.
"""

import numpy as np
import pytest

from repro.errors import (
    DeadlineExpiredError,
    OverloadError,
    SaturationError,
    ServiceError,
)
from repro.faults.backoff import RetryPolicy
from repro.faults.plan import FaultPlan, LinkFailure, NodeCrash
from repro.network import clique, grid, line
from repro.obs import MemoryRecorder
from repro.online import run_online
from repro.online.arrivals import OnlineWorkload
from repro.service import (
    SaturationDetector,
    SchedulingService,
    ServiceConfig,
    ServiceReport,
    run_service,
)
from repro.service.loop import _Entry
from repro.workloads import PoissonStream, spawn
from repro.workloads.streams import ArrivalStream


def _stream(net, rate, limit=None, key="svc", w=12, k=2):
    return PoissonStream(net, w=w, k=k, rate=rate, rng=spawn(11, key),
                         limit=limit)


class _RoundRobinStream(PoissonStream):
    """Poisson arrivals on distinct nodes (node = tid), for parity tests."""

    def _draw_node(self):
        return self._next_tid % self.network.n


class _BurstOnceStream(ArrivalStream):
    """A fixed burst at t=0: node i requests object 0 (homed at node 0)."""

    def __init__(self, net, count, rng):
        super().__init__(net, w=2, k=1, rng=rng, limit=count)
        self.count = count
        self.object_homes = {0: 0, 1: 0}

    def _count_at(self, t):
        return self.count if t == 0 else 0

    def _draw_node(self):
        return self._next_tid % self.network.n

    def _draw_objects(self):
        return (0,)


class TestConfig:
    def test_defaults_valid(self):
        cfg = ServiceConfig()
        assert cfg.effective_low_water == cfg.high_water // 2
        assert cfg.effective_min_backlog == cfg.high_water // 2

    @pytest.mark.parametrize(
        "kw",
        [
            {"window": 0},
            {"high_water": 0},
            {"low_water": 99, "high_water": 10},
            {"admission": "bounce"},
            {"deadline": 0},
            {"on_expiry": "explode"},
            {"detector_horizon": 1},
            {"slope_threshold": 0.0},
            {"min_backlog": 0},
            {"on_saturation": "panic"},
            {"engine": "quantum"},
        ],
    )
    def test_bad_config_raises(self, kw):
        with pytest.raises(ServiceError):
            ServiceConfig(**kw)

    def test_batch_engine_rejects_fault_plan(self):
        s = _stream(grid(3), 0.3)
        plan = FaultPlan([NodeCrash(0, 5)])
        with pytest.raises(ServiceError, match="batch engine"):
            SchedulingService(s, ServiceConfig(engine="batch"), plan=plan)

    def test_auto_engine_picks_by_plan(self):
        assert SchedulingService(_stream(grid(3), 0.3)).engine == "batch"
        svc = SchedulingService(
            _stream(grid(3), 0.3), plan=FaultPlan([NodeCrash(0, 5)])
        )
        assert svc.engine == "reactive"


class TestSaturationDetector:
    def test_flat_queue_never_trips(self):
        det = SaturationDetector(horizon=4, slope_threshold=0.5, min_backlog=2)
        for _ in range(20):
            det.observe(5)
        assert not det.saturated and det.trips == 0

    def test_growth_below_floor_never_trips(self):
        det = SaturationDetector(horizon=3, slope_threshold=0.1,
                                 min_backlog=100)
        for q in range(30):
            det.observe(q)
        assert not det.saturated

    def test_linear_growth_trips_once_horizon_fills(self):
        det = SaturationDetector(horizon=4, slope_threshold=0.5, min_backlog=4)
        states = [det.observe(2 * i) for i in range(6)]
        assert det.saturated
        assert det.tripped_at is not None
        # never rules before the horizon fills
        assert all(s == "nominal" for s in states[:3])
        # slope of 2i per window is exactly 2
        assert det.slope() == pytest.approx(2.0)

    def test_hysteresis_clears_only_after_drain(self):
        det = SaturationDetector(horizon=3, slope_threshold=0.5, min_backlog=5)
        for q in (5, 10, 15):
            det.observe(q)
        assert det.saturated
        det.observe(15)  # flat but still high: stays tripped
        assert det.saturated
        det.observe(2)  # drained below the floor: clears
        assert not det.saturated
        assert det.trips == 1

    def test_rejects_bad_inputs(self):
        with pytest.raises(ServiceError):
            SaturationDetector(horizon=1)
        det = SaturationDetector()
        with pytest.raises(ServiceError):
            det.observe(-1)


class TestServiceBasics:
    def test_finite_stream_drains_and_accounts(self):
        rep = run_service(_stream(grid(4), 0.5, limit=30))
        assert rep.released == 30
        assert rep.committed == 30
        assert rep.final_backlog == 0
        assert rep.accounted
        assert rep.sojourn_p99 >= rep.sojourn_p50 > 0

    def test_same_seed_same_report(self):
        rep1 = run_service(_stream(grid(4), 0.7, limit=40))
        rep2 = run_service(_stream(grid(4), 0.7, limit=40))
        assert rep1 == rep2

    def test_unbounded_stream_requires_window_count(self):
        with pytest.raises(ServiceError, match="window count"):
            run_service(_stream(grid(4), 0.5))

    def test_bad_window_count(self):
        with pytest.raises(ServiceError):
            run_service(_stream(grid(4), 0.5, limit=10), windows=0)

    def test_incremental_windows_match_one_shot(self):
        svc = SchedulingService(_stream(grid(4), 0.6, limit=30))
        svc.run(windows=3)
        rep_inc = svc.run()  # drain the rest
        rep_one = run_service(_stream(grid(4), 0.6, limit=30))
        assert rep_inc == rep_one

    def test_report_json_round_trip(self):
        rep = run_service(_stream(grid(4), 0.5, limit=20))
        assert ServiceReport.from_json(rep.to_json()) == rep

    def test_report_registered_and_dispatches(self):
        from repro.analysis.report import REPORT_KINDS, report_from_json

        rep = run_service(_stream(grid(4), 0.5, limit=20))
        loaded = report_from_json(rep.to_json())
        assert isinstance(loaded, ServiceReport) and loaded == rep
        assert REPORT_KINDS["service"] is ServiceReport

    def test_save_load_report(self, tmp_path):
        from repro.io import load_report, save_report

        rep = run_service(_stream(grid(4), 0.5, limit=20))
        path = tmp_path / "svc.json"
        save_report(rep, path)
        assert load_report(path) == rep

    def test_render_mentions_the_verdict(self):
        rep = run_service(_stream(grid(4), 0.5, limit=20))
        text = rep.render()
        assert "never saturated" in text and "committed" in text


class TestBackpressure:
    def test_shed_bounds_the_backlog(self):
        cfg = ServiceConfig(window=8, high_water=10, admission="shed",
                            slope_threshold=100.0)
        rep = run_service(_stream(line(6), 3.0, key="hot", w=8, k=3),
                          windows=30, config=cfg)
        assert rep.shed > 0
        assert rep.peak_backlog <= 10
        assert rep.accounted

    def test_defer_loses_nothing(self):
        # slope_threshold high enough that the detector never flips the
        # service into shed mode: pure defer, every release kept
        cfg = ServiceConfig(window=8, high_water=10, admission="defer",
                            slope_threshold=1000.0)
        rep = run_service(_stream(line(6), 3.0, key="hot", w=8, k=3),
                          windows=30, config=cfg)
        assert rep.shed == 0
        assert rep.deferred_admissions > 0
        assert rep.committed + rep.final_backlog == rep.released
        assert rep.accounted

    def test_strict_raises_overload(self):
        cfg = ServiceConfig(window=8, high_water=4, admission="strict",
                            slope_threshold=1000.0)
        with pytest.raises(OverloadError):
            run_service(_stream(line(6), 3.0, key="hot", w=8, k=3),
                        windows=30, config=cfg)

    def test_gate_hysteresis(self):
        svc = SchedulingService(
            _stream(grid(4), 0.5),
            ServiceConfig(high_water=8, low_water=3),
        )
        dummy = [_Entry(None, 0) for _ in range(8)]
        svc._backlog = list(dummy)
        svc._update_gate()
        assert not svc._gate_open  # closed at high water
        svc._backlog = dummy[:5]
        svc._update_gate()
        assert not svc._gate_open  # still closed between the marks
        svc._backlog = dummy[:2]
        svc._update_gate()
        assert svc._gate_open  # reopens only below low water


class TestDeadlines:
    def test_expiry_is_counted_not_silent(self):
        cfg = ServiceConfig(window=8, high_water=16, deadline=20,
                            slope_threshold=1000.0)
        rep = run_service(_stream(line(6), 3.0, key="hot", w=8, k=3),
                          windows=30, config=cfg)
        assert rep.expired > 0
        assert rep.accounted

    def test_strict_expiry_raises(self):
        cfg = ServiceConfig(window=8, high_water=16, deadline=10,
                            on_expiry="strict", slope_threshold=1000.0)
        with pytest.raises(DeadlineExpiredError):
            run_service(_stream(line(6), 3.0, key="hot", w=8, k=3),
                        windows=40, config=cfg)


class TestFaults:
    def test_crash_losses_are_typed_and_accounted(self):
        net = grid(4)
        plan = FaultPlan([NodeCrash(net.n - 1, 20)])
        rep = run_service(_stream(net, 0.6, limit=50), plan=plan)
        assert rep.engine == "reactive"
        assert rep.lost > 0
        assert rep.accounted
        assert rep.committed + rep.lost == rep.released

    def test_window_retry_backs_off_then_drops(self):
        # a permanent partition on a line: object 0 lives across the cut,
        # every window fails, retries back off, budget finally exhausts
        net = line(4)
        stream = _BurstOnceStream(net, count=3, rng=spawn(11, "burst"))
        plan = FaultPlan([LinkFailure(1, 2, 0, None)])
        cfg = ServiceConfig(
            window=4,
            retry=RetryPolicy(max_retries=2, max_wait=2),
            slope_threshold=1000.0,
        )
        rep = run_service(stream, windows=30, config=cfg, plan=plan)
        assert rep.window_retries > 0
        assert rep.lost > 0  # retry budget exhausted, typed drop
        assert rep.final_backlog == 0
        assert rep.accounted

    def test_empty_plan_reactive_commits_everything(self):
        cfg = ServiceConfig(engine="reactive")
        rep = run_service(_stream(grid(4), 0.5, limit=30), config=cfg)
        assert rep.committed == rep.released == 30
        assert rep.accounted


class TestRunOnlineParity:
    def test_commit_counts_match_run_online(self):
        # same arrival sequence, empty plan, sub-saturation rate: the
        # service commits exactly the transactions run_online commits
        net = clique(12)
        svc_stream = _RoundRobinStream(net, w=10, k=2, rate=0.4,
                                       rng=spawn(11, "par"), limit=10)
        ref_stream = _RoundRobinStream(net, w=10, k=2, rate=0.4,
                                       rng=spawn(11, "par"), limit=10)
        arrivals = ref_stream.take(10)
        workload = OnlineWorkload(net, arrivals, ref_stream.object_homes)
        healthy = run_online(workload)
        rep = run_service(svc_stream, config=ServiceConfig(engine="reactive"))
        assert rep.committed == len(healthy.schedule.commit_times) == 10
        assert rep.released == workload.m
        assert rep.lost == rep.shed == rep.expired == 0


class TestRecorderParity:
    def test_recording_never_changes_the_run(self):
        rec = MemoryRecorder(meta={"run": "svc"})
        rep_rec = run_service(_stream(grid(4), 0.7, limit=40), recorder=rec)
        rep_plain = run_service(_stream(grid(4), 0.7, limit=40))
        assert rep_rec == rep_plain  # bit parity
        reg = rec.registry
        assert reg.counter("service.windows").value == rep_rec.windows
        assert reg.counter("service.commits").value == rep_rec.committed
        assert any(e.kind == "commit" for e in rec.events)
        assert any(e.kind == "admission" for e in rec.events)


class TestSaturationBehavior:
    def test_overload_trips_detector_and_sheds(self):
        cfg = ServiceConfig(window=8, high_water=16, admission="defer",
                            detector_horizon=4, slope_threshold=0.4)
        rep = run_service(_stream(line(8), 3.0, key="hot", w=8, k=3),
                          windows=40, config=cfg)
        assert rep.saturated
        assert rep.saturated_at is not None and rep.saturated_at >= 3
        assert rep.shed_windows > 0
        assert rep.shed > 0  # defer flipped to shed under saturation
        assert rep.accounted

    def test_strict_saturation_raises(self):
        cfg = ServiceConfig(window=8, high_water=16, admission="defer",
                            detector_horizon=4, slope_threshold=0.4,
                            on_saturation="strict")
        with pytest.raises(SaturationError):
            run_service(_stream(line(8), 3.0, key="hot", w=8, k=3),
                        windows=40, config=cfg)

    def test_stable_rate_never_saturates(self):
        rep = run_service(_stream(grid(4), 0.3), windows=50)
        assert not rep.saturated
        assert rep.final_slope < 0.5
        assert rep.mean_backlog < 5
