"""Property tests: crash recovery is outcome-invariant, everywhere.

Hypothesis drives the chaos coordinates instead of a hand-picked few:
killing any worker at any window -- or two workers, or the same worker
twice -- must leave the merged :class:`~repro.cluster.ClusterReport`
bit-identical in outcome (``parity_key``) to the fault-free run.  The
fault-free baseline is computed once per module and reused, so each
example pays for one chaos run only.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import ChaosPlan, ClusterConfig, StreamSpec, WorkerKill, run_cluster
from repro.service import ServiceConfig

WORKERS = 2
WINDOWS = 8
STREAM = StreamSpec(kind="poisson", w=16, k=2, rate=0.7, seed=11)
SVC = ServiceConfig(window=8)


def _config() -> ClusterConfig:
    return ClusterConfig(
        workers=WORKERS,
        windows=WINDOWS,
        checkpoint_every=3,
        restart_backoff_s=0.0,
        poll_interval_s=0.02,
    )


@pytest.fixture(scope="module")
def baseline():
    return run_cluster("grid", 3, None, STREAM, SVC, _config())


coords = st.tuples(
    st.integers(min_value=0, max_value=WORKERS - 1),
    st.integers(min_value=0, max_value=WINDOWS - 1),
)


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(coord=coords)
def test_kill_anywhere_is_outcome_invariant(baseline, coord):
    worker, window = coord
    rep = run_cluster(
        "grid", 3, None, STREAM, SVC, _config(),
        chaos=ChaosPlan([WorkerKill(worker, window)]),
    )
    assert rep.restarts == 1
    assert rep.accounted
    assert rep.parity_key() == baseline.parity_key()


@settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    pair=st.tuples(coords, coords).filter(lambda p: p[0] != p[1]),
)
def test_double_kill_is_outcome_invariant(baseline, pair):
    # two kills -- same worker twice or both workers -- at any windows
    rep = run_cluster(
        "grid", 3, None, STREAM, SVC, _config(),
        chaos=ChaosPlan([WorkerKill(*pair[0]), WorkerKill(*pair[1])]),
    )
    assert rep.restarts == 2
    assert rep.accounted
    assert rep.parity_key() == baseline.parity_key()


@settings(max_examples=4, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_recovery_is_seed_deterministic(seed):
    # for any stream seed, a double restart of the same worker still
    # reproduces that seed's fault-free outcome exactly
    stream = StreamSpec(kind="poisson", w=16, k=2, rate=0.7, seed=seed)
    base = run_cluster("grid", 3, None, stream, SVC, _config())
    rep = run_cluster(
        "grid", 3, None, stream, SVC, _config(),
        chaos=ChaosPlan([WorkerKill(0, 2), WorkerKill(0, 6)]),
    )
    assert rep.accounted
    assert rep.parity_key() == base.parity_key()
