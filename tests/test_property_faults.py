"""Property-based tests (hypothesis) for degraded-network routing.

Strategies mirror ``tests/test_property.py``: arbitrary connected weighted
networks (random spanning tree plus chords) with an arbitrary subset of
edges marked down.  The invariants under test seed the fault engine's
detour logic:

* every detour candidate within a leg's slack still meets the deadline;
* ``path_avoiding`` returns a valid path that touches no down edge, and
  returns None only when the down set really disconnects the endpoints;
* a faulty replay against a repairable single-link failure commits every
  transaction.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GreedyScheduler, Instance, Transaction
from repro.faults import FaultPlan, LinkFailure, faulty_execute, path_avoiding
from repro.network.graph import Network
from repro.sim.reroute import detour_candidates


@st.composite
def networks(draw, max_n=10):
    n = draw(st.integers(min_value=2, max_value=max_n))
    edges = []
    for i in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=i - 1))
        w = draw(st.integers(min_value=1, max_value=4))
        edges.append((parent, i, w))
    n_chords = draw(st.integers(min_value=0, max_value=n))
    for _ in range(n_chords):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u == v or any((a, b) in ((u, v), (v, u)) for a, b, _ in edges):
            continue
        w = draw(st.integers(min_value=1, max_value=4))
        edges.append((u, v, w))
    return Network(n, edges)


@st.composite
def networks_with_down_edges(draw, max_n=10):
    net = draw(networks(max_n=max_n))
    all_edges = [(u, v) for u, v, _ in net.edges()]
    down = draw(
        st.sets(st.sampled_from(all_edges), max_size=len(all_edges))
    )
    return net, frozenset(down)


@st.composite
def instances(draw, max_n=10, max_w=5):
    net = draw(networks(max_n=max_n))
    w = draw(st.integers(min_value=1, max_value=max_w))
    m = draw(st.integers(min_value=1, max_value=net.n))
    nodes = draw(
        st.permutations(list(range(net.n))).map(lambda p: sorted(p[:m]))
    )
    txns = []
    for i, node in enumerate(nodes):
        objs = draw(
            st.sets(
                st.integers(min_value=0, max_value=w - 1),
                min_size=1,
                max_size=w,
            )
        )
        txns.append(Transaction(i, node, objs))
    homes = {
        o: draw(st.integers(min_value=0, max_value=net.n - 1))
        for o in range(w)
    }
    return Instance(net, txns, homes)


def reachable(net, src, down):
    """BFS oracle: nodes reachable from ``src`` avoiding ``down`` edges."""
    seen = {src}
    stack = [src]
    while stack:
        u = stack.pop()
        for v in net.neighbors(u):
            e = (u, v) if u < v else (v, u)
            if e in down or v in seen:
                continue
            seen.add(v)
            stack.append(v)
    return seen


@given(networks_with_down_edges())
@settings(max_examples=75, deadline=None)
def test_path_avoiding_is_valid_and_complete(net_down):
    net, down = net_down
    rng = np.random.default_rng(0)
    for _ in range(5):
        src, dst = (int(x) for x in rng.integers(0, net.n, 2))
        path = path_avoiding(net, src, dst, down)
        if dst in reachable(net, src, down):
            assert path is not None
            assert path[0] == src and path[-1] == dst
            for a, b in zip(path, path[1:]):
                assert net.has_edge(a, b)
                assert ((min(a, b), max(a, b))) not in down
        else:
            assert path is None


@given(instances())
@settings(max_examples=50, deadline=None)
def test_detour_candidates_stay_within_slack(inst):
    s = GreedyScheduler().schedule(inst)
    net = inst.network
    for obj, visits in s.itineraries():
        for a, b in zip(visits, visits[1:]):
            if a.node == b.node:
                continue
            slack = (b.time - a.time) - net.dist(a.node, b.node)
            for path in detour_candidates(net, a.node, b.node, slack):
                length = sum(
                    net.edge_weight(u, v) for u, v in zip(path, path[1:])
                )
                # any candidate keeps the leg feasible: depart at a.time,
                # arrive by the commit at b.time
                assert a.time + length <= b.time
                assert path[0] == a.node and path[-1] == b.node


@given(networks_with_down_edges())
@settings(max_examples=50, deadline=None)
def test_degraded_shortest_is_no_shorter_than_healthy(net_down):
    net, down = net_down
    rng = np.random.default_rng(1)
    for _ in range(3):
        src, dst = (int(x) for x in rng.integers(0, net.n, 2))
        path = path_avoiding(net, src, dst, down)
        if path is None:
            continue
        length = sum(net.edge_weight(a, b) for a, b in zip(path, path[1:]))
        assert length >= net.dist(src, dst)
        if not down:
            assert length == net.dist(src, dst)


@given(instances(), st.integers(min_value=0, max_value=10**6))
@settings(max_examples=50, deadline=None)
def test_repairable_single_link_failure_commits_everything(inst, pick):
    s = GreedyScheduler().schedule(inst)
    edges = list(inst.network.edges())
    u, v, _ = edges[pick % len(edges)]
    plan = FaultPlan([LinkFailure(u, v, 1, s.makespan + 1)])
    trace = faulty_execute(s, plan)
    assert trace.committed == inst.m
    assert not trace.lost
    # realized commits still serialize each object's users
    for obj in inst.objects:
        users = sorted(inst.users(obj), key=lambda t: s.time_of(t.tid))
        realized = [trace.realized_commits[t.tid] for t in users]
        assert realized == sorted(realized)
