"""Integration tests: schedulers x topologies x workloads, end to end.

Every combination must produce a schedule that (a) passes static
feasibility, (b) survives hop-level simulation, (c) respects the certified
lower bound, and (d) -- for the paper's schedulers -- lands within the
theorem's predicted factor envelope (with generous constants; the point is
the shape, not the constant).
"""

import math

import numpy as np
import pytest

from repro.analysis import evaluate
from repro.baselines import (
    RandomOrderScheduler,
    SequentialScheduler,
    TSPOrderScheduler,
)
from repro.bounds import (
    hard_grid_instance,
    hard_tree_instance,
    makespan_lower_bound,
)
from repro.core import GreedyScheduler, resolve_scheduler
from repro.core.dispatch import schedule
from repro.network import (
    butterfly,
    clique,
    cluster,
    grid,
    hypercube,
    line,
    star,
)
from repro.sim import execute
from repro.workloads import (
    hot_object_instance,
    random_k_subsets,
    zipf_k_subsets,
)

NETS = [
    clique(12),
    hypercube(4),
    butterfly(3),
    line(40),
    grid(6),
    cluster(3, 5, gamma=6),
    star(4, 7),
]
GENERATORS = [random_k_subsets, zipf_k_subsets, hot_object_instance]


@pytest.mark.parametrize("net", NETS, ids=[n.topology.name for n in NETS])
@pytest.mark.parametrize("gen", GENERATORS, ids=lambda g: g.__name__)
@pytest.mark.parametrize("k", [1, 2, 3])
def test_paper_scheduler_full_matrix(net, gen, k):
    rng = np.random.default_rng(hash((net.topology.name, gen.__name__, k)) % 2**32)
    w = max(k + 1, net.n // 3)
    inst = gen(net, w, k, rng)
    s = schedule(inst, rng=rng)
    s.validate()
    trace = execute(s)
    assert trace.makespan == s.makespan
    assert makespan_lower_bound(inst) <= s.makespan


@pytest.mark.parametrize("net", NETS, ids=[n.topology.name for n in NETS])
def test_baselines_full_matrix(net):
    rng = np.random.default_rng(net.n)
    inst = random_k_subsets(net, max(2, net.n // 3), 2, rng)
    lb = makespan_lower_bound(inst)
    for sched in (
        GreedyScheduler(),
        SequentialScheduler(),
        RandomOrderScheduler(),
        TSPOrderScheduler(),
    ):
        ev = evaluate(sched, inst, rng, lower_bound=lb)
        assert ev.makespan >= lb


class TestTheoremEnvelopes:
    """Measured ratios stay inside the theorems' shapes (loose constants)."""

    def test_clique_o_of_k(self):
        for k in (1, 2, 4):
            rng = np.random.default_rng(k)
            inst = random_k_subsets(clique(48), w=16, k=k, rng=rng)
            ev = evaluate(
            resolve_scheduler(topology=inst.network.topology.name),
            inst, rng,
        )
            assert ev.ratio <= 4 * k + 2

    def test_hypercube_o_of_k_logn(self):
        for k in (1, 2):
            rng = np.random.default_rng(10 + k)
            inst = random_k_subsets(hypercube(5), w=12, k=k, rng=rng)
            ev = evaluate(
            resolve_scheduler(topology=inst.network.topology.name),
            inst, rng,
        )
            assert ev.ratio <= 4 * k * math.log2(inst.network.n) + 2

    def test_line_constant_factor(self):
        for seed in range(3):
            rng = np.random.default_rng(seed)
            inst = random_k_subsets(line(100), w=12, k=2, rng=rng)
            ev = evaluate(
            resolve_scheduler(topology=inst.network.topology.name),
            inst, rng,
        )
            assert ev.ratio <= 6.0  # 4 plus walk/MST slack

    def test_grid_o_of_k_logm(self):
        rng = np.random.default_rng(20)
        inst = random_k_subsets(grid(10), w=10, k=2, rng=rng)
        ev = evaluate(
            resolve_scheduler(topology=inst.network.topology.name),
            inst, rng,
        )
        m = max(inst.network.n, inst.num_objects)
        assert ev.ratio <= 8 * 2 * math.log(m)

    def test_cluster_envelope(self):
        rng = np.random.default_rng(30)
        inst = random_k_subsets(cluster(4, 6, gamma=6), w=10, k=2, rng=rng)
        ev = evaluate(
            resolve_scheduler(topology=inst.network.topology.name),
            inst, rng,
        )
        beta = 6
        assert ev.ratio <= 8 * 2 * beta  # O(k*beta) arm of the min

    def test_star_envelope(self):
        rng = np.random.default_rng(40)
        inst = random_k_subsets(star(5, 7), w=10, k=2, rng=rng)
        ev = evaluate(
            resolve_scheduler(topology=inst.network.topology.name),
            inst, rng,
        )
        beta = 7
        assert ev.ratio <= 8 * math.log2(beta) * 2 * beta


class TestHardInstancesEndToEnd:
    @pytest.mark.parametrize("builder", [hard_grid_instance, hard_tree_instance])
    def test_all_schedulers_feasible_on_hard_instances(self, builder):
        rng = np.random.default_rng(0)
        inst = builder(4, rng).instance
        for sched in (
            GreedyScheduler(),
            SequentialScheduler(),
            TSPOrderScheduler(),
        ):
            s = sched.schedule(inst, rng)
            s.validate()
            execute(s)


class TestCrossValidation:
    """Static checker and simulator agree on feasibility."""

    def test_agreement_on_feasible(self):
        for seed in range(5):
            rng = np.random.default_rng(seed)
            inst = random_k_subsets(grid(5), w=6, k=2, rng=rng)
            s = GreedyScheduler().schedule(inst)
            assert s.is_feasible()
            execute(s)  # must not raise

    def test_agreement_on_infeasible(self):
        from repro.core import Schedule
        from repro.errors import InfeasibleScheduleError

        rng = np.random.default_rng(99)
        inst = random_k_subsets(line(10), w=3, k=2, rng=rng)
        good = GreedyScheduler().schedule(inst)
        # squash all commits to t=1: conflicts become simultaneous
        bad = Schedule(inst, {tid: 1 for tid in good.commit_times})
        if not bad.is_feasible():
            with pytest.raises(InfeasibleScheduleError):
                bad.validate()
