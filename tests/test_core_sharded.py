"""Unit tests for the two-phase sharded scheduler (arXiv:2405.15015 style).

The split is the correctness core: a transaction is cross-shard iff its
objects' homes span >= 2 shards, and the intra groups of different shards
are conflict-disjoint (each object is homed in exactly one shard), which
is what licenses merging them in parallel at t = 0.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ShardedClusterScheduler,
    ShardedScheduler,
    cross_shard_ratio,
    get_scheduler,
    shard_split,
)
from repro.errors import TopologyError
from repro.network import clique, node_shards, shard_cluster
from repro.sim import execute
from repro.staticcheck import certify_schedule
from repro.workloads import partitioned_instance, random_k_subsets
from repro.workloads.seeds import spawn


def sharded_instance(shards=3, shard_size=4, cross=0.3, k=2, seed=0,
                     gamma=None):
    net = shard_cluster(shards, shard_size, gamma=gamma)
    groups = net.topology.params["members"]
    rng = np.random.default_rng(seed)
    return partitioned_instance(
        net, groups, objects_per_group=max(k, 3), k=k,
        cross_fraction=cross, rng=rng,
    )


class TestShardSplit:
    def test_classification_agrees_with_homes(self):
        inst = sharded_instance(seed=1)
        shard_of = node_shards(inst.network)
        split = shard_split(inst)
        cross = set(split.cross)
        for t in inst.transactions:
            homes = {shard_of[inst.home(o)] for o in t.objects}
            assert (t.tid in cross) == (len(homes) >= 2)

    def test_intra_tids_live_in_their_shard(self):
        inst = sharded_instance(seed=2)
        shard_of = node_shards(inst.network)
        by_tid = {t.tid: t for t in inst.transactions}
        for sid, tids in shard_split(inst).intra:
            for tid in tids:
                homes = {shard_of[inst.home(o)] for o in by_tid[tid].objects}
                assert homes in ({sid}, set())

    def test_split_is_a_partition_of_tids(self):
        inst = sharded_instance(seed=3)
        split = shard_split(inst)
        seen = sorted(
            list(split.cross)
            + [tid for _, tids in split.intra for tid in tids]
        )
        assert seen == sorted(t.tid for t in inst.transactions)

    def test_fully_local_has_no_cross(self):
        inst = sharded_instance(cross=0.0, seed=4)
        assert shard_split(inst).cross_count == 0
        assert cross_shard_ratio(inst) == 0.0

    @given(
        shards=st.integers(min_value=2, max_value=4),
        size=st.integers(min_value=2, max_value=4),
        cross=st.sampled_from([0.0, 0.2, 0.6]),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=25, deadline=None)
    def test_classification_property(self, shards, size, cross, seed):
        inst = sharded_instance(shards, size, cross=cross, seed=seed)
        shard_of = node_shards(inst.network)
        cross_tids = set(shard_split(inst).cross)
        for t in inst.transactions:
            homes = {shard_of[inst.home(o)] for o in t.objects}
            assert (t.tid in cross_tids) == (len(homes) >= 2)


class TestShardedScheduler:
    def test_registered_names(self):
        assert isinstance(get_scheduler("sharded"), ShardedScheduler)
        assert isinstance(
            get_scheduler("sharded-cluster"), ShardedClusterScheduler
        )

    def test_requires_sharded_topology(self):
        rng = np.random.default_rng(0)
        inst = random_k_subsets(clique(8), w=4, k=2, rng=rng)
        with pytest.raises(TopologyError):
            ShardedScheduler().schedule(inst, rng)

    def test_invalid_cross_mode(self):
        with pytest.raises(ValueError, match="cross"):
            ShardedScheduler(cross="quantum")

    @pytest.mark.parametrize("cross_mode", ["greedy", "rounds"])
    def test_feasible_both_cross_modes(self, cross_mode):
        inst = sharded_instance(seed=5)
        rng = np.random.default_rng(5)
        s = ShardedScheduler(cross=cross_mode).schedule(inst, rng)
        s.validate()
        execute(s)
        assert s.meta["cross_mode"] == cross_mode

    def test_meta_records_phase_composition(self):
        inst = sharded_instance(cross=0.4, seed=6)
        s = ShardedScheduler().schedule(inst, np.random.default_rng(6))
        assert s.meta["intra"] + s.meta["cross"] == len(inst.transactions)
        assert s.makespan <= s.meta["intra_makespan"] + s.meta["cross_makespan"]
        assert s.meta["shards"] == 3

    def test_cross_commits_after_intra_phase(self):
        inst = sharded_instance(cross=0.5, seed=7)
        split = shard_split(inst)
        s = ShardedScheduler().schedule(inst, np.random.default_rng(7))
        intra_end = s.meta["intra_makespan"]
        for tid in split.cross:
            assert s.commit_times[tid] > intra_end

    def test_deterministic_greedy_cross(self):
        inst = sharded_instance(seed=8)
        a = ShardedScheduler().schedule(inst, np.random.default_rng(1))
        b = ShardedScheduler().schedule(inst, np.random.default_rng(2))
        assert a.commit_times == b.commit_times

    def test_rounds_mode_records_protocol_meta(self):
        inst = sharded_instance(cross=0.5, seed=9)
        s = ShardedClusterScheduler().schedule(
            inst, np.random.default_rng(9)
        )
        assert s.meta["cross_mode"] == "rounds"
        assert s.meta["rounds_used"] >= 1
        assert s.meta["round_duration"] >= 1
        s.validate()

    def test_certificate_passes(self):
        inst = sharded_instance(cross=0.3, seed=10)
        s = ShardedScheduler().schedule(inst, np.random.default_rng(10))
        cert = certify_schedule(s)
        assert cert.ok
        bound = [c for c in cert.checks if c.name == "theorem_bound"][0]
        assert "not enforced" in bound.detail

    @given(
        shards=st.integers(min_value=2, max_value=4),
        size=st.integers(min_value=3, max_value=5),
        cross=st.sampled_from([0.0, 0.25, 0.5]),
        seed=st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=15, deadline=None)
    def test_certificate_property(self, shards, size, cross, seed):
        # the §2 feasibility certificate holds structurally: phase
        # composition keeps every itinerary leg within its time budget
        inst = sharded_instance(shards, size, cross=cross, seed=seed)
        rng = spawn(seed, "sharded-cert", shards, size)
        s = ShardedScheduler().schedule(inst, rng)
        assert certify_schedule(s).ok

    def test_zero_cross_matches_per_shard_greedy(self):
        # with no cross phase, makespan is the slowest shard's greedy pass
        inst = sharded_instance(cross=0.0, seed=11)
        s = ShardedScheduler().schedule(inst, np.random.default_rng(11))
        assert s.meta["cross_makespan"] == 0
        per_shard = dict(s.meta["per_shard_makespans"])
        assert s.makespan == max(per_shard.values())
