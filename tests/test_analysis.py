"""Unit tests for metrics, stats, and table rendering."""

import numpy as np
import pytest

from repro.analysis import (
    Evaluation,
    Table,
    evaluate,
    geometric_mean,
    summarize,
)
from repro.core import GreedyScheduler
from repro.network import clique
from repro.workloads import random_k_subsets


class TestEvaluate:
    def test_round_trip(self):
        rng = np.random.default_rng(0)
        inst = random_k_subsets(clique(10), w=4, k=2, rng=rng)
        ev = evaluate(GreedyScheduler(), inst, rng)
        assert ev.scheduler == "greedy"
        assert ev.makespan >= ev.lower_bound
        assert ev.ratio >= 1.0
        assert ev.runtime_s >= 0
        assert ev.max_in_flight >= 0

    def test_supplied_lower_bound_used(self):
        rng = np.random.default_rng(1)
        inst = random_k_subsets(clique(8), w=3, k=2, rng=rng)
        ev = evaluate(GreedyScheduler(), inst, rng, lower_bound=2)
        assert ev.lower_bound == 2

    def test_simulate_off_still_measures_comm(self):
        rng = np.random.default_rng(2)
        inst = random_k_subsets(clique(8), w=3, k=2, rng=rng)
        on = evaluate(GreedyScheduler(), inst, rng, simulate=True)
        off = evaluate(GreedyScheduler(), inst, rng, simulate=False)
        assert on.communication_cost == off.communication_cost

    def test_as_dict_shape(self):
        rng = np.random.default_rng(3)
        inst = random_k_subsets(clique(8), w=3, k=2, rng=rng)
        row = evaluate(GreedyScheduler(), inst, rng).as_dict()
        assert set(row) == {
            "scheduler", "makespan", "lower_bound", "ratio",
            "comm_cost", "runtime_s",
        }

    def test_as_row_deprecated_shim(self):
        rng = np.random.default_rng(3)
        inst = random_k_subsets(clique(8), w=3, k=2, rng=rng)
        ev = evaluate(GreedyScheduler(), inst, rng)
        with pytest.warns(DeprecationWarning):
            row = ev.as_row()
        assert row == ev.as_dict()


class TestStats:
    def test_summary_basic(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.n == 3
        assert s.mean == pytest.approx(2.0)
        assert s.minimum == 1.0
        assert s.maximum == 3.0
        lo, hi = s.ci95
        assert lo < 2.0 < hi

    def test_singleton_sample(self):
        s = summarize([5.0])
        assert s.std == 0.0
        assert s.ci95_half_width == 0.0
        assert s.fmt().startswith("5.00")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestTable:
    def make(self):
        t = Table("demo", columns=["a", "b"])
        t.add(a=1, b=2.5)
        t.add(a="x")
        return t

    def test_add_rejects_unknown_column(self):
        t = Table("demo", columns=["a"])
        with pytest.raises(KeyError):
            t.add(z=1)

    def test_render_contains_everything(self):
        t = self.make()
        t.add_note("hello")
        text = t.render()
        assert "demo" in text
        assert "2.500" in text
        assert "note: hello" in text

    def test_column_extraction(self):
        t = self.make()
        assert t.column("a") == [1, "x"]
        assert t.column("b") == [2.5]

    def test_markdown(self):
        md = self.make().to_markdown()
        assert md.splitlines()[0] == "| a | b |"
        assert "| 1 | 2.500 |" in md
