"""Property-based tests (hypothesis) for the core invariants.

Strategies build arbitrary connected weighted networks (random spanning
tree plus chords) and arbitrary instances over them; the invariants under
test are the library's contracts:

* greedy colouring is always valid and within ``Gamma + 1``;
* every scheduler's output passes the static checker AND the simulator;
* the certified lower bound never exceeds any feasible makespan;
* the static checker and the engine accept/reject in agreement;
* metric helpers satisfy their sandwich inequalities.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import ListScheduler, RandomOrderScheduler
from repro.bounds import makespan_lower_bound
from repro.bounds.walks import held_karp_path, mst_weight, walk_bounds
from repro.core import (
    DependencyGraph,
    GreedyScheduler,
    Instance,
    Schedule,
    Transaction,
)
from repro.core.coloring import greedy_color, validate_coloring
from repro.errors import InfeasibleScheduleError
from repro.network.graph import Network
from repro.sim import execute


# --------------------------------------------------------------------- #
# strategies
# --------------------------------------------------------------------- #

@st.composite
def networks(draw, max_n=12):
    n = draw(st.integers(min_value=2, max_value=max_n))
    edges = []
    # random spanning tree: connect node i to a random earlier node
    for i in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=i - 1))
        w = draw(st.integers(min_value=1, max_value=5))
        edges.append((parent, i, w))
    # chords
    n_chords = draw(st.integers(min_value=0, max_value=n))
    for _ in range(n_chords):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u == v or any(
            (a, b) in ((u, v), (v, u)) for a, b, _ in edges
        ):
            continue
        w = draw(st.integers(min_value=1, max_value=5))
        edges.append((u, v, w))
    return Network(n, edges)


@st.composite
def instances(draw, max_n=12, max_w=6):
    net = draw(networks(max_n=max_n))
    w = draw(st.integers(min_value=1, max_value=max_w))
    m = draw(st.integers(min_value=1, max_value=net.n))
    nodes = draw(
        st.permutations(list(range(net.n))).map(lambda p: sorted(p[:m]))
    )
    txns = []
    for i, node in enumerate(nodes):
        k = draw(st.integers(min_value=1, max_value=w))
        objs = draw(
            st.sets(
                st.integers(min_value=0, max_value=w - 1),
                min_size=1,
                max_size=k,
            )
        )
        txns.append(Transaction(i, node, objs))
    homes = {
        o: draw(st.integers(min_value=0, max_value=net.n - 1))
        for o in range(w)
    }
    return Instance(net, txns, homes)


@st.composite
def metric_matrices(draw, max_n=8):
    n = draw(st.integers(min_value=1, max_value=max_n))
    pts = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=30),
                st.integers(min_value=0, max_value=30),
            ),
            min_size=n,
            max_size=n,
        )
    )
    arr = np.asarray(pts, dtype=np.int64)
    return np.abs(arr[:, None, :] - arr[None, :, :]).sum(axis=2)


# --------------------------------------------------------------------- #
# network metric properties
# --------------------------------------------------------------------- #

@given(networks())
@settings(max_examples=50, deadline=None)
def test_distances_form_a_metric(net):
    d = net.distance_matrix
    assert (d == d.T).all()
    assert (np.diag(d) == 0).all()
    # triangle inequality via min-plus check on a few triples
    n = net.n
    for u in range(min(n, 5)):
        for v in range(min(n, 5)):
            for x in range(min(n, 5)):
                assert d[u, v] <= d[u, x] + d[x, v]


@given(networks())
@settings(max_examples=50, deadline=None)
def test_shortest_path_length_matches_distance(net):
    rng = np.random.default_rng(0)
    for _ in range(5):
        u, v = rng.integers(0, net.n, 2)
        path = net.shortest_path(int(u), int(v))
        total = sum(net.edge_weight(a, b) for a, b in zip(path, path[1:]))
        assert total == net.dist(int(u), int(v))


# --------------------------------------------------------------------- #
# colouring properties
# --------------------------------------------------------------------- #

@given(instances())
@settings(max_examples=75, deadline=None)
def test_greedy_coloring_always_valid_and_bounded(inst):
    h = DependencyGraph.build(inst)
    colors = greedy_color(h)
    validate_coloring(h, colors)
    assert max(colors.values()) <= h.weighted_degree + 1


# --------------------------------------------------------------------- #
# scheduling properties
# --------------------------------------------------------------------- #

@given(instances())
@settings(max_examples=75, deadline=None)
def test_greedy_schedule_feasible_and_above_lower_bound(inst):
    s = GreedyScheduler().schedule(inst)
    s.validate()
    trace = execute(s)
    assert trace.makespan == s.makespan
    assert makespan_lower_bound(inst) <= s.makespan


@given(instances(), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=50, deadline=None)
def test_list_schedulers_feasible_any_priority(inst, seed):
    rng = np.random.default_rng(seed)
    for sched in (ListScheduler(), RandomOrderScheduler()):
        s = sched.schedule(inst, rng)
        s.validate()
        execute(s)


@given(instances(), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=50, deadline=None)
def test_checker_and_engine_agree(inst, seed):
    """Random commit times: static validation and the engine agree."""
    rng = np.random.default_rng(seed)
    horizon = max(4 * inst.network.diameter() + 2, 8)
    commits = {
        t.tid: int(rng.integers(1, horizon)) for t in inst.transactions
    }
    s = Schedule(inst, commits)
    if s.is_feasible():
        execute(s)
    else:
        try:
            execute(s)
        except InfeasibleScheduleError:
            pass
        else:  # pragma: no cover - would be a real bug
            raise AssertionError(
                "engine accepted a schedule the checker rejected"
            )


# --------------------------------------------------------------------- #
# walk/tour properties
# --------------------------------------------------------------------- #

@given(metric_matrices())
@settings(max_examples=75, deadline=None)
def test_walk_bounds_sandwich(dist):
    lo, hi = walk_bounds(dist, 0)
    assert 0 <= lo <= hi
    if dist.shape[0] <= 8:
        exact = held_karp_path(dist, 0)
        assert lo <= exact <= hi


@given(metric_matrices())
@settings(max_examples=75, deadline=None)
def test_mst_lower_bounds_exact_walk(dist):
    if dist.shape[0] <= 8:
        assert mst_weight(dist) <= held_karp_path(dist, 0)
