"""Unit tests for the fault-tolerant execution layer (repro.faults)."""

import numpy as np
import pytest

from repro.core import GreedyScheduler, Instance, Schedule, Transaction
from repro.errors import FaultError, RecoveryError, ReproError
from repro.faults import (
    DelaySpike,
    FaultPlan,
    LinkFailure,
    NodeCrash,
    ObjectStall,
    RetryPolicy,
    degradation_report,
    degraded_network,
    faulty_execute,
    path_avoiding,
    random_fault_plan,
    reschedule_survivors,
)
from repro.network import clique, grid, line
from repro.network.graph import Network
from repro.sim import execute
from repro.workloads import random_k_subsets, root_rng


def scheduled(net, w=6, k=2, seed=0):
    inst = random_k_subsets(net, w=w, k=k, rng=root_rng(seed))
    s = GreedyScheduler().schedule(inst)
    s.validate()
    return s


class TestFaultPlan:
    def test_empty_plan(self):
        plan = FaultPlan()
        assert plan.is_empty
        assert len(plan) == 0
        assert plan.down_edges(5) == frozenset()
        assert plan.crash_time(0) is None

    def test_window_queries(self):
        plan = FaultPlan([LinkFailure(3, 1, 5, 10)])
        assert plan.link_down(1, 3, 4) is None
        assert plan.link_down(1, 3, 5) is not None
        assert plan.link_down(3, 1, 9) is not None  # edge order normalized
        assert plan.link_down(1, 3, 10) is None  # repaired at end
        assert plan.down_edges(7) == frozenset({(1, 3)})
        assert plan.permanent_down_edges(7) == frozenset()

    def test_permanent_failure(self):
        plan = FaultPlan([LinkFailure(0, 1, 2, None)])
        assert plan.link_down(0, 1, 10**9) is not None
        assert plan.permanent_down_edges(3) == frozenset({(0, 1)})

    def test_earliest_crash_wins(self):
        plan = FaultPlan([NodeCrash(4, 20), NodeCrash(4, 7)])
        assert plan.crash_time(4) == 7

    def test_stall_and_spike_queries(self):
        plan = FaultPlan(
            [
                ObjectStall(2, 3, 6),
                DelaySpike(0, 1, 2, 8, 2.0),
                DelaySpike(1, 0, 4, 6, 3.0),
            ]
        )
        assert plan.stall(2, 3) is not None
        assert plan.stall(2, 6) is None
        assert plan.delay_factor(0, 1, 5) == (3.0, plan.events[2])
        assert plan.delay_factor(0, 1, 7)[0] == 2.0
        assert plan.delay_factor(0, 1, 1) == (1.0, None)

    @pytest.mark.parametrize(
        "bad",
        [
            LinkFailure(0, 1, -1, 5),
            LinkFailure(0, 1, 5, 5),
            NodeCrash(0, -2),
            ObjectStall(0, 4, 4),
            DelaySpike(0, 1, 0, 5, 0.5),
            "not an event",
        ],
    )
    def test_validation_rejects(self, bad):
        with pytest.raises(FaultError):
            FaultPlan([bad])

    def test_attribution_indexing(self):
        events = [LinkFailure(0, 1, 0, 5), NodeCrash(2, 3)]
        plan = FaultPlan(events)
        for i in range(len(plan)):
            assert plan.describe(i)
        assert plan.index_of(plan.events[1]) == 1

    def test_random_plan_deterministic_and_scaled(self):
        net = grid(5)
        a = random_fault_plan(net, 50, np.random.default_rng(1), 2.0,
                              crash_rate=0.05, objects=range(6))
        b = random_fault_plan(net, 50, np.random.default_rng(1), 2.0,
                              crash_rate=0.05, objects=range(6))
        assert a.events == b.events
        empty = random_fault_plan(net, 50, np.random.default_rng(1), 0.0)
        assert empty.is_empty

    @pytest.mark.parametrize(
        "event, complaint",
        [
            (LinkFailure(0, 99, 0, 5), "unknown node"),
            (LinkFailure(0, 5, 0, 5), "unknown link"),  # no line edge (0,5)
            (DelaySpike(2, 7, 0, 5, 2.0), "unknown link"),
            (NodeCrash(12, 3), "unknown node"),
        ],
    )
    def test_network_validation_rejects_at_construction(self, event, complaint):
        net = line(8)
        with pytest.raises(FaultError, match=complaint):
            FaultPlan([event], network=net)
        # the same check is available post-hoc on an unchecked plan
        with pytest.raises(FaultError, match=complaint):
            FaultPlan([event]).validate_against(net)

    def test_network_validation_accepts_real_edges(self):
        net = line(8)
        plan = FaultPlan(
            [LinkFailure(3, 4, 0, 5), DelaySpike(4, 5, 0, 5, 2.0),
             NodeCrash(7, 3), ObjectStall(999, 0, 5)],
            network=net,
        )
        assert len(plan) == 4  # object stalls are instance-scoped: unchecked

    def test_latest_time_tracks_finite_horizon(self):
        assert FaultPlan().latest_time == 0
        plan = FaultPlan([
            LinkFailure(0, 1, 2, 30),
            LinkFailure(1, 2, 40, None),  # permanent: counts its start
            NodeCrash(3, 17),
            ObjectStall(0, 5, 25),
        ])
        assert plan.latest_time == 40

    def test_faulty_execute_validates_plan_against_network(self):
        s = scheduled(grid(4), seed=2)
        with pytest.raises(FaultError, match="unknown node"):
            faulty_execute(s, FaultPlan([NodeCrash(400, 1)]))


class TestHealthyPathExactness:
    """An empty plan must add zero distortion: trace equals sim.execute."""

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("make_net", [lambda: grid(6), lambda: line(18),
                                          lambda: clique(12)])
    def test_trace_parity(self, make_net, seed):
        s = scheduled(make_net(), seed=seed)
        healthy = execute(s)
        trace = faulty_execute(s, FaultPlan())
        assert trace.makespan == healthy.makespan
        assert trace.commits == healthy.commits
        assert trace.total_distance == healthy.total_distance
        assert trace.object_distance == healthy.object_distance
        assert trace.edge_traffic == healthy.edge_traffic
        assert trace.max_in_flight == healthy.max_in_flight
        assert trace.idle_object_time == healthy.idle_object_time
        assert trace.retries == trace.reroutes == 0
        assert trace.recoveries == trace.deferred_commits == 0
        assert not trace.lost and not trace.attribution


class TestLinkFailures:
    def test_detour_absorbs_failure(self):
        # diamond: short way 0-1-3 (len 2), long way 0-2-3 (len 4);
        # failing (0,1) forces the strictly longer detour
        net = Network(4, [(0, 1, 1), (1, 3, 1), (0, 2, 2), (2, 3, 2)])
        inst = Instance(
            net,
            [Transaction(0, 0, {0}), Transaction(1, 3, {0})],
            {0: 0},
        )
        s = Schedule(inst, {0: 1, 1: 5})
        trace = faulty_execute(s, FaultPlan([LinkFailure(0, 1, 0, None)]))
        assert trace.committed == 2
        assert trace.reroutes == 1
        assert (0, 2) in trace.edge_traffic and (0, 1) not in trace.edge_traffic
        assert trace.makespan == 5  # detour arrives exactly at the deadline

    def test_waits_for_repair_when_partitioned(self):
        # a line has no detours: the object must wait out the window
        inst = Instance(
            line(4),
            [Transaction(0, 0, {0}), Transaction(1, 3, {0})],
            {0: 0},
        )
        s = Schedule(inst, {0: 1, 1: 4})
        plan = FaultPlan([LinkFailure(1, 2, 0, 8)])
        trace = faulty_execute(s, plan)
        assert trace.committed == 2
        assert trace.retries >= 1
        assert trace.deferred_commits == 1
        assert trace.realized_commits[1] >= 8 + 2  # repair + remaining hops
        assert plan.index_of(plan.events[0]) in trace.attribution

    def test_permanent_partition_raises_fault_error(self):
        inst = Instance(
            line(4),
            [Transaction(0, 0, {0}), Transaction(1, 3, {0})],
            {0: 0},
        )
        s = Schedule(inst, {0: 1, 1: 4})
        plan = FaultPlan([LinkFailure(1, 2, 0, None)])
        with pytest.raises(FaultError):
            faulty_execute(s, plan, RetryPolicy(max_retries=6))

    def test_mid_route_failure_rerouted(self):
        # failure window opens while the object is already underway
        net = grid(5)
        s = scheduled(net, seed=3)
        # fail a central edge for the whole run; grid always has detours
        plan = FaultPlan([LinkFailure(11, 12, 0, None)])
        trace = faulty_execute(s, plan)
        assert trace.committed == len(s.commit_times)
        assert (11, 12) not in trace.edge_traffic


class TestObjectStallsAndSpikes:
    def test_stall_defers_commit(self):
        inst = Instance(
            line(3),
            [Transaction(0, 0, {0}), Transaction(1, 2, {0})],
            {0: 0},
        )
        s = Schedule(inst, {0: 1, 1: 3})
        trace = faulty_execute(s, FaultPlan([ObjectStall(0, 1, 6)]))
        assert trace.committed == 2
        assert trace.deferred_commits == 1
        assert trace.realized_commits[1] >= 8
        assert trace.retries >= 1

    def test_spike_stretches_hops(self):
        inst = Instance(
            line(3),
            [Transaction(0, 0, {0}), Transaction(1, 2, {0})],
            {0: 0},
        )
        s = Schedule(inst, {0: 1, 1: 3})
        trace = faulty_execute(
            s, FaultPlan([DelaySpike(0, 1, 0, 100, 3.0),
                          DelaySpike(1, 2, 0, 100, 3.0)])
        )
        assert trace.committed == 2
        # both unit hops now take 3 steps: depart t=1, arrive t=7
        assert trace.realized_commits[1] == 7
        assert trace.deferred_commits == 1

    def test_unyielding_stall_raises(self):
        inst = Instance(
            line(3),
            [Transaction(0, 0, {0}), Transaction(1, 2, {0})],
            {0: 0},
        )
        s = Schedule(inst, {0: 1, 1: 3})
        plan = FaultPlan([ObjectStall(0, 1, 10**9)])
        with pytest.raises(FaultError):
            faulty_execute(s, plan, RetryPolicy(max_retries=5))


class TestNodeCrashRecovery:
    def make(self, seed=2):
        net = grid(5)
        inst = random_k_subsets(net, w=6, k=2, rng=root_rng(seed))
        s = GreedyScheduler().schedule(inst)
        s.validate()
        return inst, s

    def test_survivors_all_commit(self):
        inst, s = self.make()
        victim = inst.transactions[-1].node
        crash_t = s.makespan // 2
        plan = FaultPlan([NodeCrash(victim, crash_t)])
        trace = faulty_execute(s, plan)
        committed = {c.tid for c in trace.commits}
        lost = {tid for tid, _ in trace.lost}
        for t in inst.transactions:
            if t.node == victim:
                assert t.tid in committed or t.tid in lost
            else:
                # every transaction on a surviving node commits (homes of
                # this workload are at requesters, all alive)
                assert t.tid in committed, t
        assert committed | lost == {t.tid for t in inst.transactions}
        assert trace.recoveries >= (1 if lost else 0)

    def test_crash_before_start_strands_node_txn(self):
        inst, s = self.make(seed=5)
        victim_txn = inst.transactions[0]
        plan = FaultPlan([NodeCrash(victim_txn.node, 0)])
        trace = faulty_execute(s, plan)
        assert victim_txn.tid in {tid for tid, _ in trace.lost}
        assert victim_txn.tid not in trace.realized_commits

    def test_crash_after_makespan_changes_nothing(self):
        inst, s = self.make(seed=7)
        plan = FaultPlan([NodeCrash(inst.transactions[0].node,
                                    s.makespan + 100)])
        trace = faulty_execute(s, plan)
        assert trace.commits == execute(s).commits
        assert trace.recoveries == 0

    def test_unrecoverable_object_loses_dependents(self):
        # object 0 lives (and stays) at node 1; crash node 1 before anyone
        # uses it: both users must be lost, not crash the engine
        net = line(4)
        txns = [Transaction(0, 1, {0}), Transaction(1, 3, {0})]
        inst = Instance(net, txns, {0: 1})
        s = Schedule(inst, {0: 1, 1: 4})
        trace = faulty_execute(s, FaultPlan([NodeCrash(1, 0)]))
        lost = dict(trace.lost)
        assert set(lost) == {0, 1}
        assert "unrecoverable" in lost[1] or "crashed" in lost[1]
        assert trace.committed == 0

    def test_restored_from_home_after_crash(self):
        # object homed at node 0, used at node 2 then node 3; node 2
        # crashes after its commit, the replica parked there is lost, and
        # the home copy serves transaction 1 after recovery
        net = line(4)
        txns = [Transaction(0, 2, {0}), Transaction(1, 3, {0})]
        inst = Instance(net, txns, {0: 0})
        s = Schedule(inst, {0: 2, 1: 10})
        plan = FaultPlan([NodeCrash(2, 4)])
        trace = faulty_execute(s, plan)
        assert trace.realized_commits[0] == 2  # committed before the crash
        assert 1 in trace.realized_commits  # recovered and committed
        assert trace.recoveries == 1
        # the recovered leg runs home(0) -> 3, re-crossing edges (0,1)
        assert trace.edge_traffic.get((0, 1), 0) >= 1

    def test_deterministic_fixed_seed(self):
        net = grid(6)
        inst = random_k_subsets(net, w=8, k=2, rng=root_rng(11))
        s = GreedyScheduler().schedule(inst)
        plan = random_fault_plan(net, s.makespan, np.random.default_rng(13),
                                 intensity=2.0, crash_rate=0.05,
                                 objects=inst.objects)
        a = faulty_execute(s, plan)
        b = faulty_execute(s, plan)
        assert a.realized_commits == b.realized_commits
        assert a.commits == b.commits
        assert a.lost == b.lost
        assert a.makespan == b.makespan


class TestRecoveryScheduler:
    def test_empty_survivors(self):
        net = line(4)
        inst = Instance(net, [Transaction(0, 0, {0})], {0: 0})
        assert reschedule_survivors(inst, [], {0: 0}, frozenset(), 5) == {}

    def test_splice_strictly_after_base(self):
        net = grid(4)
        inst = random_k_subsets(net, w=5, k=2, rng=root_rng(3))
        pos = {o: inst.home(o) for o in inst.objects}
        out = reschedule_survivors(
            inst, list(inst.transactions), pos, frozenset(), 100
        )
        assert set(out) == {t.tid for t in inst.transactions}
        assert all(v > 100 for v in out.values())

    def test_degraded_network_drops_edges(self):
        net = grid(3)
        deg = degraded_network(net, frozenset({(0, 1)}))
        assert not deg.has_edge(0, 1)
        assert deg.n == net.n

    def test_degraded_network_partition_raises(self):
        with pytest.raises(RecoveryError):
            degraded_network(line(4), frozenset({(1, 2)}))

    def test_recovery_error_is_fault_and_repro_error(self):
        assert issubclass(RecoveryError, FaultError)
        assert issubclass(RecoveryError, ReproError)


class TestPathAvoiding:
    def test_no_faults_is_shortest_path(self):
        net = grid(4)
        assert path_avoiding(net, 0, 15, frozenset()) == \
            net.shortest_path(0, 15)

    def test_avoids_down_edges(self):
        net = grid(4)
        down = frozenset({(0, 1), (0, 4)})
        path = path_avoiding(net, 0, 15, down)
        assert path is None  # node 0 fully cut off
        down = frozenset({(0, 1)})
        path = path_avoiding(net, 0, 15, down)
        assert path is not None
        assert all((min(a, b), max(a, b)) not in down
                   for a, b in zip(path, path[1:]))

    def test_masked_fallback_complete(self):
        # with detour candidates disabled the masked Dijkstra fallback
        # must still find the way around the ladder
        net = grid(2, 5)
        down = frozenset({(0, 1)})
        path = path_avoiding(net, 0, 1, down, max_detours=0)
        assert path == [0, 5, 6, 1]


class TestDegradationReport:
    def test_healthy_report(self):
        s = scheduled(grid(5), seed=1)
        plan = FaultPlan()
        rep = degradation_report(s, plan, faulty_execute(s, plan))
        assert rep.stretch == 1.0
        assert rep.commit_rate == 1.0
        assert rep.lost == 0 and rep.fault_count == 0
        assert rep.attribution == ()
        assert "stretch 1.000" in rep.render()

    def test_disrupted_report_attributes_faults(self):
        s = scheduled(line(12), seed=4)
        plan = FaultPlan([LinkFailure(5, 6, 1, 20),
                          DelaySpike(2, 3, 0, 50, 4.0)])
        trace = faulty_execute(s, plan)
        rep = degradation_report(s, plan, trace)
        assert rep.realized_makespan >= rep.planned_makespan
        assert rep.stretch >= 1.0
        assert rep.fault_count == 2
        d = rep.as_dict()
        for key in ("stretch", "commit_rate", "retries", "recoveries"):
            assert key in d
        if trace.attribution:
            descs = [desc for desc, _ in rep.attribution]
            assert all(isinstance(x, str) for x in descs)

    def test_e17_runs(self):
        from repro.experiments import run_experiment

        table = run_experiment("e17", seed=123, quick=True)
        topologies = {row["topology"] for row in table.rows}
        assert {"line", "grid"} <= topologies
        intensities = sorted({row["intensity"] for row in table.rows})
        assert len(intensities) >= 3
        for row in table.rows:
            if row["intensity"] == 0.0:
                assert row["stretch"] == 1.0
                assert row["recoveries"] == 0.0
        # deterministic given the seed
        again = run_experiment("e17", seed=123, quick=True)
        assert again.rows == table.rows
