"""Unit tests for the online scheduling extension (repro.online)."""

import numpy as np
import pytest

from repro.core import Transaction
from repro.errors import InstanceError
from repro.network import clique, cluster, grid, line
from repro.online import (
    OnlineWorkload,
    TimedTransaction,
    poisson_workload,
    random_priority,
    run_epoch_batched,
    run_online,
    timestamp_priority,
)
from repro.workloads import root_rng


def tiny_workload(releases=(0, 2, 5)):
    net = line(8)
    txns = [
        Transaction(0, 0, {0}),
        Transaction(1, 4, {0}),
        Transaction(2, 7, {1}),
    ]
    arrivals = [
        TimedTransaction(releases[i], txns[i]) for i in range(3)
    ]
    return OnlineWorkload(net, arrivals, {0: 0, 1: 7})


class TestWorkload:
    def test_arrivals_sorted_by_release(self):
        wl = tiny_workload(releases=(5, 0, 2))
        assert [a.release for a in wl.arrivals] == [0, 2, 5]

    def test_release_lookup_and_horizon(self):
        wl = tiny_workload()
        assert wl.release_of(2) == 5
        assert wl.horizon == 5
        assert wl.m == 3

    def test_rejects_negative_release(self):
        net = line(3)
        with pytest.raises(InstanceError, match="negative"):
            OnlineWorkload(
                net,
                [TimedTransaction(-1, Transaction(0, 0, {0}))],
                {0: 0},
            )

    def test_poisson_shapes(self):
        wl = poisson_workload(clique(20), w=6, k=2, rate=0.5, count=15,
                              rng=root_rng(0))
        assert wl.m == 15
        rel = [a.release for a in wl.arrivals]
        assert rel == sorted(rel)
        assert all(r >= 1 for r in rel)

    def test_poisson_count_capped_by_nodes(self):
        with pytest.raises(InstanceError, match="exceeds"):
            poisson_workload(clique(4), 2, 1, 1.0, 5, root_rng(1))

    def test_poisson_param_validation(self):
        with pytest.raises(ValueError):
            poisson_workload(clique(4), 2, 3, 1.0, 2, root_rng(2))
        with pytest.raises(ValueError):
            poisson_workload(clique(4), 2, 1, 0.0, 2, root_rng(3))


class TestRunOnline:
    def test_schedule_feasible_and_respects_releases(self):
        wl = tiny_workload()
        res = run_online(wl)
        res.schedule.validate()
        for tid, ct in res.schedule.commit_times.items():
            assert ct >= wl.release_of(tid)

    def test_timestamp_serves_older_first(self):
        # both txns need object 0; the earlier-released one commits first
        wl = tiny_workload()
        res = run_online(wl)
        assert res.schedule.time_of(0) < res.schedule.time_of(1)

    def test_response_metrics(self):
        wl = tiny_workload()
        res = run_online(wl)
        rts = res.response_times
        assert set(rts) == {0, 1, 2}
        assert res.max_response >= res.mean_response > 0 or (
            res.mean_response >= 0
        )

    def test_random_priority_feasible(self):
        wl = poisson_workload(grid(5), w=6, k=2, rate=0.7, count=20,
                              rng=root_rng(4))
        res = run_online(wl, random_priority, rng=root_rng(5))
        res.schedule.validate()

    @pytest.mark.parametrize("net", [clique(16), grid(4), cluster(3, 4, 5)],
                             ids=lambda n: n.topology.name)
    def test_terminates_across_topologies(self, net):
        wl = poisson_workload(net, w=5, k=2, rate=0.4,
                              count=min(12, net.n), rng=root_rng(net.n))
        res = run_online(wl)
        assert len(res.schedule.commit_times) == wl.m

    def test_max_steps_guard(self):
        from repro.errors import SchedulingError

        wl = tiny_workload()
        with pytest.raises(SchedulingError, match="exceeded"):
            run_online(wl, max_steps=1)

    def test_priority_helpers_cover_all(self):
        wl = tiny_workload()
        assert set(timestamp_priority(wl)) == {0, 1, 2}
        assert set(random_priority(wl, root_rng(6))) == {0, 1, 2}


class TestEpochBatched:
    def test_feasible_and_respects_releases(self):
        wl = poisson_workload(clique(16), w=5, k=2, rate=0.5, count=12,
                              rng=root_rng(7))
        res = run_epoch_batched(wl, rng=root_rng(8))
        res.schedule.validate()
        for tid, ct in res.schedule.commit_times.items():
            assert ct >= wl.release_of(tid)

    def test_all_transactions_scheduled(self):
        wl = poisson_workload(grid(5), w=6, k=2, rate=2.0, count=20,
                              rng=root_rng(9))
        res = run_epoch_batched(wl, rng=root_rng(10))
        assert len(res.schedule.commit_times) == 20

    def test_custom_epoch_and_scheduler(self):
        from repro.core import GreedyScheduler

        wl = poisson_workload(clique(10), w=4, k=2, rate=1.0, count=8,
                              rng=root_rng(11))
        res = run_epoch_batched(wl, scheduler=GreedyScheduler(), epoch=3)
        res.schedule.validate()
        assert res.schedule.meta["epoch"] == 3
