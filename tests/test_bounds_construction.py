"""Unit tests for the §8 hard-instance constructions."""

import numpy as np
import pytest

from repro.bounds import (
    a_object,
    b_object,
    hard_grid_instance,
    hard_tree_instance,
    object_report,
)


@pytest.fixture(params=["grid", "tree"])
def hard(request):
    rng = np.random.default_rng(42)
    if request.param == "grid":
        return hard_grid_instance(4, rng)
    return hard_tree_instance(4, rng)


class TestStructure:
    def test_every_node_has_a_transaction(self, hard):
        assert hard.instance.m == hard.network.n

    def test_two_objects_per_transaction(self, hard):
        assert all(t.k == 2 for t in hard.instance.transactions)

    def test_block_serializer_used_by_whole_block(self, hard):
        blocks = hard.network.topology.require("blocks")
        for i, members in enumerate(blocks):
            users = {t.node for t in hard.instance.users(a_object(i))}
            assert users == set(members)

    def test_a_objects_homed_top_left_h1(self, hard):
        blocks = hard.network.topology.require("blocks")
        for i in range(hard.s):
            assert hard.instance.home(a_object(i)) == blocks[0][0]

    def test_b_objects_homed_in_h1(self, hard):
        blocks = hard.network.topology.require("blocks")
        h1 = set(blocks[0])
        for j in range(hard.s):
            assert hard.instance.home(b_object(hard.s, j)) in h1

    def test_b_homes_prefer_requesters(self, hard):
        h1 = set(hard.network.topology.require("blocks")[0])
        for j in range(hard.s):
            obj = b_object(hard.s, j)
            h1_users = [
                t.node for t in hard.instance.users(obj) if t.node in h1
            ]
            if h1_users:
                assert hard.instance.home(obj) in h1_users

    def test_object_count_is_2s(self, hard):
        assert hard.instance.num_objects == 2 * hard.s

    def test_block_of(self, hard):
        blocks = hard.network.topology.require("blocks")
        for idx, members in enumerate(blocks):
            for node in members:
                assert hard.block_of(node) == idx


class TestLemma10:
    @pytest.mark.parametrize("s", [4, 9])
    def test_tours_within_5s_squared(self, s):
        # Lemma 10: every object's walk (hence tour estimate up to 2x) is
        # O(s^2); check the 5s^2 constant for the b-objects' *walks* and a
        # relaxed 2x bound for heuristic closed tours.
        rng = np.random.default_rng(s)
        hard = hard_grid_instance(s, rng)
        report = object_report(hard.instance)
        for ob in report.values():
            assert ob.walk_upper <= 5 * s * s
            assert ob.tour_estimate <= 10 * s * s

    def test_reproducible_given_seed(self):
        a = hard_grid_instance(4, np.random.default_rng(7))
        b = hard_grid_instance(4, np.random.default_rng(7))
        assert [t.objects for t in a.instance.transactions] == [
            t.objects for t in b.instance.transactions
        ]
