"""Reference-vs-vectorized kernel parity, field by field.

The vectorized kernels are only allowed to be faster, never different:
for every topology and seed, the dependency graph, the colouring, the
schedule, and the executed trace must match the reference kernel
exactly.  Hypothesis drives the workloads; the fixed-topology
parametrization covers every builder at least once even under the CI
profile's reduced example count.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coloring import greedy_color, validate_coloring
from repro.core.dependency import ArrayDependencyGraph, DependencyGraph
from repro.core.greedy import GreedyScheduler
from repro.core.kernels import KERNELS, resolve_kernel
from repro.errors import SchedulingError
from repro.network import (
    butterfly,
    clique,
    cluster,
    grid,
    hypercube,
    line,
    star,
)
from repro.sim import execute
from repro.workloads import random_k_subsets

TOPOLOGIES = {
    "clique": lambda: clique(8),
    "line": lambda: line(12),
    "grid": lambda: grid(5),
    "cluster": lambda: cluster(3, 4),
    "hypercube": lambda: hypercube(3),
    "butterfly": lambda: butterfly(2),
    "star": lambda: star(3, 4),
}


def _instance(topo: str, seed: int, w: int, k: int):
    net = TOPOLOGIES[topo]()
    rng = np.random.default_rng(seed)
    return random_k_subsets(net, w=w, k=min(k, w), rng=rng)


def _graph_edges(graph: DependencyGraph):
    return {
        (tid, other): weight
        for tid in graph.vertices()
        for other, weight in graph.neighbors(tid).items()
    }


def _trace_fields(trace):
    return (
        trace.makespan,
        trace.total_distance,
        trace.object_distance,
        trace.edge_traffic,
        trace.max_in_flight,
        trace.commits,
        trace.idle_object_time,
    )


topo_seeds = given(
    topo=st.sampled_from(sorted(TOPOLOGIES)),
    seed=st.integers(0, 2**32 - 1),
    w=st.integers(2, 24),
    k=st.integers(1, 4),
)


class TestDependencyParity:
    @settings(deadline=None)
    @topo_seeds
    def test_build_identical(self, topo, seed, w, k):
        inst = _instance(topo, seed, w, k)
        ref = DependencyGraph.build(inst, kernel="reference")
        vec = DependencyGraph.build(inst, kernel="vectorized")
        assert isinstance(vec, ArrayDependencyGraph)
        assert ref.num_vertices == vec.num_vertices
        assert sorted(ref.vertices()) == sorted(vec.vertices())
        assert _graph_edges(ref) == _graph_edges(vec)


class TestColoringParity:
    @settings(deadline=None)
    @topo_seeds
    def test_colors_identical(self, topo, seed, w, k):
        inst = _instance(topo, seed, w, k)
        ref_graph = DependencyGraph.build(inst, kernel="reference")
        vec_graph = DependencyGraph.build(inst, kernel="vectorized")
        ref = greedy_color(ref_graph, kernel="reference")
        vec = greedy_color(vec_graph, kernel="vectorized")
        assert ref == vec
        validate_coloring(vec_graph, vec)


class TestScheduleParity:
    @settings(deadline=None)
    @topo_seeds
    def test_schedules_identical(self, topo, seed, w, k):
        inst = _instance(topo, seed, w, k)
        ref = GreedyScheduler(kernel="reference").schedule(inst)
        vec = GreedyScheduler(kernel="vectorized").schedule(inst)
        assert ref.commit_times == vec.commit_times
        assert ref.makespan == vec.makespan


class TestExecuteParity:
    @settings(deadline=None)
    @topo_seeds
    def test_traces_identical(self, topo, seed, w, k):
        inst = _instance(topo, seed, w, k)
        sched = GreedyScheduler(kernel="vectorized").schedule(inst)
        ref = execute(sched, kernel="reference")
        sched._itineraries = None  # fresh routing pass for the second run
        vec = execute(sched, kernel="vectorized")
        assert _trace_fields(ref) == _trace_fields(vec)

    @pytest.mark.parametrize("topo", sorted(TOPOLOGIES))
    def test_traces_identical_every_topology(self, topo):
        inst = _instance(topo, seed=7, w=12, k=3)
        sched = GreedyScheduler(kernel="vectorized").schedule(inst)
        ref = execute(sched, kernel="reference")
        sched._itineraries = None
        vec = execute(sched, kernel="vectorized")
        assert _trace_fields(ref) == _trace_fields(vec)


class TestKernelSwitch:
    def test_known_kernels(self):
        assert set(KERNELS) == {"reference", "vectorized"}
        for k in KERNELS:
            assert resolve_kernel(k) == k

    def test_auto_resolves_to_a_known_kernel(self):
        assert resolve_kernel("auto") in KERNELS

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "reference")
        assert resolve_kernel("auto") == "reference"
        monkeypatch.setenv("REPRO_KERNEL", "vectorized")
        assert resolve_kernel("auto") == "vectorized"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(SchedulingError):
            resolve_kernel("simd")
