"""Unit tests for the greedy scheduler (§2.3, Theorem 1, §3.1)."""

import numpy as np
import pytest

from repro.core import (
    CliqueScheduler,
    DiameterScheduler,
    GreedyScheduler,
    Instance,
    Transaction,
)
from repro.core.greedy import positioning_offset
from repro.network import clique, hypercube, line
from repro.sim import execute
from repro.workloads import random_k_subsets


class TestGreedyScheduler:
    def test_feasible_on_random_clique(self):
        rng = np.random.default_rng(0)
        inst = random_k_subsets(clique(20), w=8, k=3, rng=rng)
        s = GreedyScheduler().schedule(inst)
        s.validate()
        execute(s)

    def test_meta_records_coloring_stats(self):
        rng = np.random.default_rng(1)
        inst = random_k_subsets(clique(10), w=4, k=2, rng=rng)
        s = GreedyScheduler().schedule(inst)
        assert s.meta["scheduler"] == "greedy"
        assert s.meta["colors_used"] >= 1
        assert s.meta["h_max"] >= 1

    def test_makespan_within_gamma_plus_offset(self):
        rng = np.random.default_rng(2)
        inst = random_k_subsets(clique(16), w=6, k=2, rng=rng)
        s = GreedyScheduler().schedule(inst)
        bound = GreedyScheduler.color_bound(inst) + s.meta["offset"]
        assert s.makespan <= bound

    def test_conflict_free_commits(self):
        rng = np.random.default_rng(3)
        inst = random_k_subsets(clique(12), w=3, k=2, rng=rng)
        s = GreedyScheduler().schedule(inst)
        by_time: dict[int, set[int]] = {}
        for t in inst.transactions:
            ct = s.time_of(t.tid)
            objs = by_time.setdefault(ct, set())
            assert not (objs & t.objects), "two commits share an object at one step"
            objs |= t.objects

    def test_singleton_instance(self):
        inst = Instance(clique(2), [Transaction(0, 0, {0})], {0: 0})
        s = GreedyScheduler().schedule(inst)
        assert s.makespan == 1

    def test_remote_home_shifts_schedule(self):
        # object homed far from its only user: offset must cover the trip
        inst = Instance(line(10), [Transaction(0, 9, {0})], {0: 0})
        s = GreedyScheduler().schedule(inst)
        s.validate()
        assert s.makespan >= 9

    def test_order_strategies_all_feasible(self):
        rng = np.random.default_rng(4)
        inst = random_k_subsets(clique(15), w=5, k=2, rng=rng)
        for order in ("id", "degree"):
            GreedyScheduler(order=order).schedule(inst).validate()
        GreedyScheduler(order="random").schedule(inst, rng).validate()


class TestPositioningOffset:
    def test_zero_when_objects_at_first_users(self):
        inst = Instance(
            clique(3),
            [Transaction(0, 0, {0}), Transaction(1, 1, {0})],
            {0: 0},
        )
        colors = {0: 1, 1: 2}
        assert positioning_offset(inst, colors) == 0

    def test_covers_longest_first_leg(self):
        inst = Instance(line(8), [Transaction(0, 7, {0})], {0: 0})
        assert positioning_offset(inst, {0: 1}) == 6  # 7 - colour 1

    def test_ignores_unused_objects(self):
        inst = Instance(
            clique(3), [Transaction(0, 0, {0})], {0: 0, 9: 2}
        )
        assert positioning_offset(inst, {0: 1}) == 0


class TestTheoremBounds:
    def test_clique_thm1_colour_bound(self):
        rng = np.random.default_rng(5)
        inst = random_k_subsets(clique(24), w=8, k=2, rng=rng)
        s = CliqueScheduler().schedule(inst)
        # k*ell + 1 colour classes and hmax = 1 on a clique
        assert s.makespan <= CliqueScheduler.theorem_bound(inst) + s.meta["offset"]

    def test_clique_ratio_at_most_k_plus_constant(self):
        rng = np.random.default_rng(6)
        k = 3
        inst = random_k_subsets(clique(32), w=8, k=k, rng=rng)
        s = CliqueScheduler().schedule(inst)
        ell = inst.max_load
        # load lower bound: ell commits spaced >= 1
        assert s.makespan <= (k * ell + 1) + 1
        assert s.makespan / max(ell, 1) <= k + 2

    def test_diameter_bound_on_hypercube(self):
        rng = np.random.default_rng(7)
        inst = random_k_subsets(hypercube(4), w=8, k=2, rng=rng)
        s = DiameterScheduler().schedule(inst)
        s.validate()
        assert s.makespan <= DiameterScheduler.theorem_bound(inst) + s.meta["offset"]

    def test_registered_names(self):
        assert GreedyScheduler.name == "greedy"
        assert CliqueScheduler.name == "clique"
        assert DiameterScheduler.name == "diameter"
