"""Good twin for DET003: the set union is sorted before iteration."""


def merged(a, b):
    """Combine two id collections in a pinned order."""
    out = []
    for item in sorted(set(a) | set(b)):
        out.append(item)
    return out
