"""Bad twin for EXP001: ``__all__`` names a symbol that never exists."""

__all__ = ["real_thing", "ghost"]


def real_thing():
    """Return a value."""
    return 42
