"""Good twin for EXP001: every ``__all__`` entry is bound."""

__all__ = ["real_thing"]


def real_thing():
    """Return a value."""
    return 42
