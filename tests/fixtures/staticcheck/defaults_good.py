"""Good twin for DET004: the container default is built per call."""


def collect(item, bucket=None):
    """Append ``item`` to a fresh bucket unless one is given."""
    if bucket is None:
        bucket = []
    bucket.append(item)
    return bucket
