"""Good twin for DET001: every RNG is built from an explicit seed."""

import numpy as np


def jitter(values, seed):
    """Perturb values reproducibly from ``seed``."""
    rng = np.random.default_rng(seed)
    return [v + rng.standard_normal() for v in values]
