"""Bad twin for DET001: constructs an RNG with no seed."""

import numpy as np


def jitter(values):
    """Perturb values nondeterministically (the hazard under test)."""
    rng = np.random.default_rng()
    return [v + rng.standard_normal() for v in values]
