"""Good twin for PROC001: workers return results; the parent merges."""

from multiprocessing import Pool


def _worker(x):
    """Square ``x`` and return it across the pipe."""
    return x * x


def run(xs):
    """Map the worker over ``xs`` and merge results in the parent."""
    with Pool(2) as pool:
        return list(pool.map(_worker, xs))
