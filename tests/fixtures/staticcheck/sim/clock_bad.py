"""Bad twin for DET002: reads the wall clock inside an engine path."""

import time


def stamp_step(step):
    """Tag a step with real time (the hazard under test)."""
    return step, time.time()
