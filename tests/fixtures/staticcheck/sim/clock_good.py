"""Good twin for DET002: logical time only; no wall-clock reads."""


def stamp_step(step, logical_clock):
    """Tag a step with the simulation's own clock."""
    return step, logical_clock
