"""Bad twin for DET004: a mutable default argument shared across calls."""


def collect(item, bucket=[]):
    """Append ``item`` to ``bucket`` (the hazard under test)."""
    bucket.append(item)
    return bucket
