"""Bad twin for PROC001: a fork-pool worker mutates module state."""

from multiprocessing import Pool

_RESULTS = []


def _worker(x):
    """Square ``x`` and stash it in module state (the hazard under test)."""
    _RESULTS.append(x * x)
    return x * x


def run(xs):
    """Map the worker over ``xs`` in a process pool."""
    with Pool(2) as pool:
        return pool.map(_worker, xs)
