"""Bad twin for DET003: iterates a set union into an ordered list."""


def merged(a, b):
    """Combine two id collections (the hazard under test)."""
    out = []
    for item in set(a) | set(b):
        out.append(item)
    return out
