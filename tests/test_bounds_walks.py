"""Unit tests for walk/tour machinery (repro.bounds.walks)."""

import itertools

import numpy as np
import pytest

from repro.bounds.walks import (
    held_karp_path,
    mst_weight,
    nearest_neighbor_path,
    path_length,
    tour_length,
    two_opt_path,
    walk_bounds,
)


def brute_force_path(dist, start):
    n = dist.shape[0]
    best = None
    for perm in itertools.permutations([i for i in range(n) if i != start]):
        order = [start, *perm]
        total = path_length(dist, order)
        best = total if best is None else min(best, total)
    return best or 0


def random_metric(rng, n):
    pts = rng.integers(0, 50, size=(n, 2))
    d = np.abs(pts[:, None, :] - pts[None, :, :]).sum(axis=2)
    return d.astype(np.int64)


class TestHeldKarp:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 7])
    def test_matches_brute_force(self, n):
        rng = np.random.default_rng(n)
        d = random_metric(rng, n)
        assert held_karp_path(d, 0) == brute_force_path(d, 0)

    def test_start_matters(self):
        # path metric 0 - 1 - 2 with start in the middle
        d = np.array([[0, 1, 2], [1, 0, 1], [2, 1, 0]], dtype=np.int64)
        assert held_karp_path(d, 0) == 2
        assert held_karp_path(d, 1) == 3

    def test_single_node(self):
        assert held_karp_path(np.zeros((1, 1), dtype=np.int64), 0) == 0


class TestHeuristics:
    def test_nearest_neighbor_visits_all(self):
        rng = np.random.default_rng(0)
        d = random_metric(rng, 8)
        order = nearest_neighbor_path(d, 0)
        assert sorted(order) == list(range(8))
        assert order[0] == 0

    def test_two_opt_never_worsens(self):
        rng = np.random.default_rng(1)
        d = random_metric(rng, 10)
        order = nearest_neighbor_path(d, 0)
        improved = two_opt_path(d, order)
        assert path_length(d, improved) <= path_length(d, order)
        assert improved[0] == 0  # start pinned

    def test_two_opt_unpinned_start(self):
        rng = np.random.default_rng(2)
        d = random_metric(rng, 8)
        order = two_opt_path(d, list(range(8)), fixed_start=False)
        assert sorted(order) == list(range(8))


class TestMST:
    def test_mst_weight_path_metric(self):
        d = np.array(
            [[0, 1, 2], [1, 0, 1], [2, 1, 0]], dtype=np.int64
        )
        assert mst_weight(d) == 2

    def test_mst_lower_bounds_walk(self):
        rng = np.random.default_rng(3)
        for n in (4, 6, 8):
            d = random_metric(rng, n)
            assert mst_weight(d) <= held_karp_path(d, 0)

    def test_mst_trivial(self):
        assert mst_weight(np.zeros((1, 1), dtype=np.int64)) == 0


class TestWalkBounds:
    def test_exact_for_small_sets(self):
        rng = np.random.default_rng(4)
        d = random_metric(rng, 7)
        lo, hi = walk_bounds(d, 0)
        assert lo == hi == held_karp_path(d, 0)

    def test_sandwich_for_large_sets(self):
        rng = np.random.default_rng(5)
        d = random_metric(rng, 20)
        lo, hi = walk_bounds(d, 0)
        assert lo <= hi
        assert lo >= 0

    def test_empty_and_singleton(self):
        assert walk_bounds(np.zeros((1, 1), dtype=np.int64), 0) == (0, 0)


class TestTour:
    def test_two_nodes(self):
        d = np.array([[0, 5], [5, 0]], dtype=np.int64)
        assert tour_length(d) == 10

    def test_tour_at_most_twice_walk(self):
        rng = np.random.default_rng(6)
        for n in (4, 6, 8):
            d = random_metric(rng, n)
            walk = held_karp_path(d, 0)
            assert tour_length(d) <= 2 * max(walk, 1) + d.max()

    def test_tour_at_least_mst(self):
        rng = np.random.default_rng(7)
        d = random_metric(rng, 9)
        assert tour_length(d) >= mst_weight(d)
