"""Unit tests for Schedule: itineraries, feasibility, costs."""

import pytest

from repro.core import Instance, Schedule, Transaction
from repro.errors import InfeasibleScheduleError
from repro.network import clique, line


def two_txn_line():
    """Two transactions sharing object 0 on a 6-line (distance 4)."""
    txns = [Transaction(0, 0, {0}), Transaction(1, 4, {0})]
    return Instance(line(6), txns, {0: 0})


class TestConstruction:
    def test_requires_all_commit_times(self):
        inst = two_txn_line()
        with pytest.raises(InfeasibleScheduleError, match="no commit"):
            Schedule(inst, {0: 1})

    def test_rejects_nonpositive_times(self):
        inst = two_txn_line()
        with pytest.raises(InfeasibleScheduleError, match=">= 1"):
            Schedule(inst, {0: 0, 1: 5})

    def test_makespan(self):
        inst = two_txn_line()
        s = Schedule(inst, {0: 1, 1: 5})
        assert s.makespan == 5
        assert s.time_of(1) == 5


class TestItineraries:
    def test_home_prefix_then_commit_order(self):
        inst = two_txn_line()
        s = Schedule(inst, {0: 2, 1: 7})
        it = s.itinerary(0)
        assert [(v.time, v.node, v.tid) for v in it] == [
            (0, 0, -1),
            (2, 0, 0),
            (7, 4, 1),
        ]

    def test_unused_object_itinerary_is_home_only(self):
        txns = [Transaction(0, 0, {0})]
        inst = Instance(clique(3), txns, {0: 0, 5: 2})
        s = Schedule(inst, {0: 1})
        assert len(s.itinerary(5)) == 1

    def test_itineraries_cover_all_objects(self):
        inst = two_txn_line()
        s = Schedule(inst, {0: 1, 1: 5})
        assert {obj for obj, _ in s.itineraries()} == {0}


class TestFeasibility:
    def test_tight_schedule_is_feasible(self):
        inst = two_txn_line()
        s = Schedule(inst, {0: 1, 1: 5})  # 4 steps for distance 4
        s.validate()
        assert s.is_feasible()

    def test_too_tight_gap_rejected(self):
        inst = two_txn_line()
        s = Schedule(inst, {0: 1, 1: 4})  # only 3 steps for distance 4
        with pytest.raises(InfeasibleScheduleError, match="needs 4"):
            s.validate()
        assert not s.is_feasible()

    def test_first_leg_from_home_checked(self):
        txns = [Transaction(0, 4, {0})]
        inst = Instance(line(6), txns, {0: 0})
        with pytest.raises(InfeasibleScheduleError):
            Schedule(inst, {0: 2}).validate()
        Schedule(inst, {0: 4}).validate()

    def test_simultaneous_conflicting_commits_rejected(self):
        inst = two_txn_line()
        s = Schedule(inst, {0: 3, 1: 3})
        with pytest.raises(InfeasibleScheduleError):
            s.validate()

    def test_non_conflicting_simultaneous_commits_ok(self):
        txns = [Transaction(0, 0, {0}), Transaction(1, 1, {1})]
        inst = Instance(clique(3), txns, {0: 0, 1: 1})
        Schedule(inst, {0: 1, 1: 1}).validate()

    def test_home_equal_to_later_user_node(self):
        # object homed at node 4, used first at node 0, then at node 4
        txns = [Transaction(0, 0, {0}), Transaction(1, 4, {0})]
        inst = Instance(line(6), txns, {0: 4})
        # t=4: reach node 0; then back to node 4 by t=8
        Schedule(inst, {0: 4, 1: 8}).validate()
        with pytest.raises(InfeasibleScheduleError):
            Schedule(inst, {0: 4, 1: 6}).validate()


class TestCosts:
    def test_communication_cost_sums_legs(self):
        inst = two_txn_line()
        s = Schedule(inst, {0: 1, 1: 9})
        assert s.communication_cost == 4  # home->0 is zero, 0->4 is 4

    def test_meta_round_trips_to_dict(self):
        inst = two_txn_line()
        s = Schedule(inst, {0: 1, 1: 5}, meta={"scheduler": "x"})
        d = s.as_dict()
        assert d["makespan"] == 5
        assert d["meta.scheduler"] == "x"
        assert d["transactions"] == 2
