"""Unit tests for repro.network.properties."""

from repro.network import butterfly, clique, cluster, grid, hypercube, line, star
from repro.network.graph import Network
from repro.network.properties import (
    average_degree,
    expected_grid_diameter,
    expected_hypercube_diameter,
    has_unit_weights,
    is_clique,
    is_grid,
    is_line,
    is_tree,
    log2_ceil,
    max_degree,
)


class TestPredicates:
    def test_is_clique_positive_and_negative(self):
        assert is_clique(clique(5))
        assert not is_clique(line(5))
        # complete structure but a heavy edge disqualifies unit weights
        net = Network(3, [(0, 1, 1), (1, 2, 1), (0, 2, 2)])
        assert not is_clique(net)

    def test_is_line_positive_and_negative(self):
        assert is_line(line(6))
        assert not is_line(clique(3))
        # right edge count, wrong shape (a star is also n-1 edges)
        assert not is_line(star(2, 2))

    def test_is_grid(self):
        assert is_grid(grid(3, 4), 3, 4)
        assert not is_grid(grid(3, 4), 4, 3)
        assert not is_grid(clique(12), 3, 4)

    def test_is_tree(self):
        assert is_tree(line(7))
        assert is_tree(star(3, 4))
        assert not is_tree(clique(4))
        assert not is_tree(grid(3))

    def test_unit_weights(self):
        assert has_unit_weights(hypercube(3))
        assert not has_unit_weights(cluster(2, 3, gamma=5))


class TestMeasures:
    def test_max_degree(self):
        assert max_degree(clique(6)) == 5
        assert max_degree(line(6)) == 2
        assert max_degree(star(4, 3)) == 4  # the center

    def test_average_degree(self):
        assert average_degree(clique(4)) == 3.0
        assert abs(average_degree(line(5)) - 1.6) < 1e-9

    def test_expected_diameters(self):
        assert expected_hypercube_diameter(5) == hypercube(5).diameter()
        assert expected_grid_diameter(4, 6) == grid(4, 6).diameter()

    def test_log2_ceil(self):
        assert log2_ceil(1) == 0
        assert log2_ceil(2) == 1
        assert log2_ceil(3) == 2
        assert log2_ceil(8) == 3
        assert log2_ceil(9) == 4

    def test_butterfly_degrees_bounded(self):
        assert max_degree(butterfly(3)) == 4
