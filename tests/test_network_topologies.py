"""Unit tests for the topology builders."""

import math

import pytest

from repro.errors import GraphError
from repro.network import (
    butterfly,
    clique,
    cluster,
    ddim_grid,
    grid,
    grid_coords,
    grid_node,
    hypercube,
    line,
    lower_bound_grid,
    lower_bound_tree,
    star,
)
from repro.network.properties import (
    has_unit_weights,
    is_clique,
    is_grid,
    is_line,
    is_tree,
)


class TestClique:
    def test_structure(self):
        net = clique(6)
        assert is_clique(net)
        assert net.topology.name == "clique"
        assert net.diameter() == 1

    def test_single_node(self):
        assert clique(1).n == 1

    def test_rejects_zero(self):
        with pytest.raises(GraphError):
            clique(0)


class TestLine:
    def test_structure(self):
        net = line(10)
        assert is_line(net)
        assert net.diameter() == 9
        assert net.dist(2, 7) == 5

    def test_degrees(self):
        net = line(5)
        assert net.degree(0) == 1
        assert net.degree(2) == 2
        assert net.degree(4) == 1


class TestGrid:
    def test_square_structure(self):
        net = grid(4)
        assert is_grid(net, 4, 4)
        assert net.topology.require("rows") == 4
        assert net.diameter() == 6

    def test_rectangular(self):
        net = grid(2, 5)
        assert is_grid(net, 2, 5)
        assert net.n == 10

    def test_coordinate_helpers_invert(self):
        for v in range(12):
            r, c = grid_coords(v, 4)
            assert grid_node(r, c, 4) == v

    def test_manhattan_distances(self):
        net = grid(5)
        assert net.dist(grid_node(0, 0, 5), grid_node(4, 4, 5)) == 8
        assert net.dist(grid_node(1, 2, 5), grid_node(3, 2, 5)) == 2

    def test_corner_and_border_degrees(self):
        net = grid(4)
        assert net.degree(grid_node(0, 0, 4)) == 2
        assert net.degree(grid_node(0, 1, 4)) == 3
        assert net.degree(grid_node(1, 1, 4)) == 4


class TestCluster:
    def test_structure(self):
        net = cluster(3, 4, gamma=6)
        topo = net.topology
        assert net.n == 12
        assert topo.require("gamma") == 6
        clusters = topo.require("clusters")
        assert len(clusters) == 3
        # each cluster is a clique of unit edges
        for members in clusters:
            for a in members:
                for b in members:
                    if a != b:
                        assert net.edge_weight(a, b) == 1

    def test_bridges_complete_with_gamma(self):
        net = cluster(4, 3, gamma=8)
        bridges = net.topology.require("bridges")
        assert len(bridges) == 4
        for i, a in enumerate(bridges):
            for b in bridges[i + 1 :]:
                assert net.edge_weight(a, b) == 8

    def test_default_gamma_is_beta(self):
        assert cluster(2, 5).topology.require("gamma") == 5

    def test_rejects_gamma_below_beta(self):
        with pytest.raises(GraphError, match="gamma >= beta"):
            cluster(2, 5, gamma=3)

    def test_cross_cluster_distance(self):
        net = cluster(2, 4, gamma=7)
        # non-bridge to non-bridge in another cluster: 1 + gamma + 1
        assert net.dist(1, 5) == 9
        assert net.diameter() == 9


class TestHypercube:
    @pytest.mark.parametrize("dim", [0, 1, 2, 3, 4])
    def test_size_and_diameter(self, dim):
        net = hypercube(dim)
        assert net.n == 2**dim
        if dim > 0:
            assert net.diameter() == dim

    def test_degree_is_dim(self):
        net = hypercube(4)
        for v in net.nodes():
            assert net.degree(v) == 4

    def test_distance_is_hamming(self):
        net = hypercube(4)
        assert net.dist(0b0000, 0b1011) == 3
        assert net.dist(0b0101, 0b0101) == 0


class TestButterfly:
    def test_size(self):
        net = butterfly(3)
        assert net.n == 4 * 8

    def test_unit_weights_and_degrees(self):
        net = butterfly(2)
        assert has_unit_weights(net)
        width = net.topology.require("width")
        # boundary levels have degree 2, middle levels degree 4
        for row in range(width):
            assert net.degree(row) == 2  # level 0
            assert net.degree(2 * width + row) == 2  # last level

    def test_diameter_is_logarithmic(self):
        net = butterfly(3)
        assert net.diameter() <= 2 * 3 + 2

    def test_rejects_dim_zero(self):
        with pytest.raises(GraphError):
            butterfly(0)


class TestStar:
    def test_structure(self):
        net = star(8, 7)
        assert net.n == 57
        assert net.topology.require("center") == 0
        rays = net.topology.require("rays")
        assert len(rays) == 8
        assert all(len(r) == 7 for r in rays)

    def test_ray_ordering_tip_to_outward(self):
        net = star(2, 4)
        rays = net.topology.require("rays")
        for ray in rays:
            assert net.has_edge(0, ray[0])
            for a, b in zip(ray, ray[1:]):
                assert net.has_edge(a, b)

    def test_distances_through_center(self):
        net = star(3, 5)
        rays = net.topology.require("rays")
        assert net.dist(rays[0][4], rays[1][4]) == 10
        assert net.dist(0, rays[2][4]) == 5

    def test_is_tree(self):
        assert is_tree(star(4, 6))


class TestDDimGrid:
    def test_matches_square_grid(self):
        a = ddim_grid([3, 3])
        b = grid(3)
        assert a.n == b.n and a.num_edges == b.num_edges

    def test_log_dim_cube_is_hypercube(self):
        a = ddim_grid([2, 2, 2])
        h = hypercube(3)
        assert a.n == h.n and a.num_edges == h.num_edges
        assert a.diameter() == 3

    def test_rejects_empty_dims(self):
        with pytest.raises(GraphError):
            ddim_grid([])


class TestLowerBoundGraphs:
    def test_grid_shape(self):
        net = lower_bound_grid(4)
        topo = net.topology
        assert net.n == 4 ** 2 * 2  # s^{5/2} = 32
        assert topo.require("rows") == 4
        assert topo.require("cols") == 8
        blocks = topo.require("blocks")
        assert len(blocks) == 4
        assert all(len(b) == 8 for b in blocks)

    def test_grid_block_boundary_weight(self):
        net = lower_bound_grid(4)
        cols = net.topology.require("cols")
        root = net.topology.require("root_s")
        # crossing edge in row 0 between block 0 and block 1
        assert net.edge_weight(root - 1, root) == 4
        # interior edge
        assert net.edge_weight(0, 1) == 1
        # vertical edges always 1
        assert net.edge_weight(0, cols) == 1

    def test_grid_rejects_nonsquare_s(self):
        with pytest.raises(GraphError, match="integral"):
            lower_bound_grid(5)

    def test_tree_is_tree(self):
        net = lower_bound_tree(9)
        assert is_tree(net)
        assert net.n == 9 ** 2 * 3  # s^{5/2} = 243

    def test_tree_block_boundary_single_heavy_edge(self):
        net = lower_bound_tree(4)
        root = net.topology.require("root_s")
        heavy = [(u, v, w) for u, v, w in net.edges() if w == 4]
        assert len(heavy) == 3  # s - 1 joining edges
        assert (root - 1, root, 4) in heavy

    def test_blocks_partition_nodes(self):
        for builder in (lower_bound_grid, lower_bound_tree):
            net = builder(4)
            blocks = net.topology.require("blocks")
            flat = [v for b in blocks for v in b]
            assert sorted(flat) == list(range(net.n))

    def test_inter_block_distance_at_least_s(self):
        net = lower_bound_grid(4)
        blocks = net.topology.require("blocks")
        d = min(net.dist(u, v) for u in blocks[0] for v in blocks[1])
        assert d >= 4


class TestTorus:
    def test_structure_and_diameter(self):
        from repro.network import torus

        net = torus(5)
        assert net.n == 25
        assert net.num_edges == 50  # 2 edges per node on a torus
        assert net.diameter() == 4  # floor(5/2) + floor(5/2)
        for v in net.nodes():
            assert net.degree(v) == 4

    def test_wraparound_distances(self):
        from repro.network import torus, grid_node

        net = torus(6)
        # opposite corners are close on a torus
        assert net.dist(grid_node(0, 0, 6), grid_node(5, 5, 6)) == 2

    def test_rectangular(self):
        from repro.network import torus

        net = torus(3, 5)
        assert net.n == 15
        assert net.topology.require("cols") == 5

    def test_rejects_tiny_sides(self):
        from repro.network import torus

        with pytest.raises(GraphError):
            torus(2, 5)

    def test_dispatches_to_diameter_scheduler(self):
        import numpy as np

        from repro.core import resolve_scheduler
        from repro.network import torus
        from repro.workloads import random_k_subsets

        inst = random_k_subsets(torus(4), 6, 2, np.random.default_rng(0))
        assert resolve_scheduler(
            topology=inst.network.topology.name
        ).name == "diameter"
