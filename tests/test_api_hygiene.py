"""API hygiene: public surface completeness and documentation.

Every name exported through an ``__all__`` must resolve, be importable,
and carry a docstring; every scheduler in the registry must satisfy the
Scheduler contract.  Guards against silent API rot.
"""

import importlib
import inspect

import pytest

SUBMODULES = [
    "repro",
    "repro.network",
    "repro.core",
    "repro.sim",
    "repro.bounds",
    "repro.baselines",
    "repro.workloads",
    "repro.analysis",
    "repro.online",
    "repro.faults",
    "repro.replication",
    "repro.controlflow",
    "repro.io",
    "repro.viz",
    "repro.experiments",
    "repro.obs",
    "repro.service",
    "repro.cluster",
    "repro.staticcheck",
]


@pytest.mark.parametrize("modname", SUBMODULES)
def test_all_exports_resolve_and_are_documented(modname):
    mod = importlib.import_module(modname)
    assert mod.__doc__, f"{modname} needs a module docstring"
    exported = getattr(mod, "__all__", [])
    assert exported, f"{modname} should declare __all__"
    for name in exported:
        obj = getattr(mod, name)  # raises if the export dangles
        if inspect.ismodule(obj):
            assert obj.__doc__, f"{modname}.{name} (module) lacks a docstring"
        elif inspect.isclass(obj) or inspect.isfunction(obj):
            assert obj.__doc__, f"{modname}.{name} lacks a docstring"


def test_registry_schedulers_satisfy_contract():
    import numpy as np

    from repro.core import available_schedulers, get_scheduler
    from repro.core.scheduler import Scheduler
    from repro.network import clique
    from repro.workloads import random_k_subsets

    inst = random_k_subsets(clique(6), 3, 2, np.random.default_rng(0))
    for name in available_schedulers():
        sched = get_scheduler(name)
        assert isinstance(sched, Scheduler)
        assert sched.name == name
        # topology-specific schedulers may reject the clique; everything
        # else must produce a feasible schedule
        try:
            s = sched.schedule(inst, np.random.default_rng(1))
        except Exception as exc:  # noqa: BLE001 - topology mismatch only
            from repro.errors import TopologyError

            assert isinstance(exc, TopologyError), (name, exc)
            continue
        s.validate()


def test_version_is_consistent():
    import repro

    assert repro.__version__ == "1.1.0"
    import pathlib

    # repro/__init__.py -> src/repro -> src -> repo root
    pyproject = pathlib.Path(repro.__file__).parents[2] / "pyproject.toml"
    assert pyproject.exists(), pyproject
    assert 'version = "1.1.0"' in pyproject.read_text()
