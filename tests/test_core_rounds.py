"""Unit tests for the activation-round engine (Algorithm 1 core)."""

import numpy as np
import pytest

from repro.core import Instance, Schedule, Transaction
from repro.core.rounds import (
    RoundGroup,
    activation_rounds,
    theoretical_psi,
    theoretical_zeta,
)
from repro.errors import SchedulingError
from repro.network import cluster
from repro.sim import execute


def simple_setup(alpha=3, beta=3, gamma=4, seed=0):
    net = cluster(alpha, beta, gamma=gamma)
    clusters = net.topology.require("clusters")
    rng = np.random.default_rng(seed)
    # one shared object across all clusters plus per-cluster locals
    txns = []
    homes = {0: clusters[0][0]}
    tid = 0
    for g, members in enumerate(clusters):
        for i, node in enumerate(members):
            obj = 0 if i == 0 else 100 + g
            txns.append(Transaction(tid, node, {obj}))
            homes.setdefault(obj, node)
            tid += 1
    inst = Instance(net, txns, homes)
    groups = [RoundGroup(gid=g, nodes=tuple(m)) for g, m in enumerate(clusters)]
    return inst, groups, rng, gamma


class TestActivationRounds:
    def test_all_transactions_commit(self):
        inst, groups, rng, gamma = simple_setup()
        res = activation_rounds(
            inst, [t.tid for t in inst.transactions], inst.object_homes,
            0, groups, travel=gamma + 2, rng=rng,
        )
        assert set(res.commits) == {t.tid for t in inst.transactions}

    def test_resulting_schedule_feasible(self):
        inst, groups, rng, gamma = simple_setup(seed=1)
        res = activation_rounds(
            inst, [t.tid for t in inst.transactions], inst.object_homes,
            0, groups, travel=gamma + 2, rng=rng,
        )
        s = Schedule(inst, res.commits)
        s.validate()
        execute(s)

    def test_nonzero_start_time_shifts_commits(self):
        inst, groups, _, gamma = simple_setup(seed=2)
        tids = [t.tid for t in inst.transactions]
        r0 = activation_rounds(
            inst, tids, inst.object_homes, 0, groups,
            travel=gamma + 2, rng=np.random.default_rng(5),
        )
        r100 = activation_rounds(
            inst, tids, inst.object_homes, 100, groups,
            travel=gamma + 2, rng=np.random.default_rng(5),
        )
        for tid in tids:
            assert r100.commits[tid] == r0.commits[tid] + 100

    def test_round_duration_matches_paper(self):
        inst, groups, rng, gamma = simple_setup()
        res = activation_rounds(
            inst, [t.tid for t in inst.transactions], inst.object_homes,
            0, groups, travel=gamma + 2, rng=rng,
        )
        beta = 3
        # span of a beta-clique group is beta - 1, so duration is
        # travel + span + 1 = gamma + 2 + beta - 1 + 1 = beta + gamma + 2
        assert res.round_duration == beta + gamma + 2

    def test_positions_updated_to_last_user(self):
        inst, groups, rng, gamma = simple_setup(seed=3)
        res = activation_rounds(
            inst, [t.tid for t in inst.transactions], inst.object_homes,
            0, groups, travel=gamma + 2, rng=rng,
        )
        # the shared object's final position is its last user's node
        last_tid = max(
            (t.tid for t in inst.transactions if 0 in t.objects),
            key=lambda tid: res.commits[tid],
        )
        assert res.positions[0] == inst.transaction(last_tid).node

    def test_fallback_on_tiny_round_cap(self):
        inst, groups, rng, gamma = simple_setup(seed=4)
        res = activation_rounds(
            inst, [t.tid for t in inst.transactions], inst.object_homes,
            0, groups, travel=gamma + 2, rng=rng, max_rounds_per_phase=0,
        )
        assert res.fallback_count == len(inst.transactions)
        Schedule(inst, res.commits).validate()

    def test_rejects_transaction_outside_groups(self):
        inst, groups, rng, gamma = simple_setup()
        with pytest.raises(SchedulingError, match="outside all groups"):
            activation_rounds(
                inst, [t.tid for t in inst.transactions], inst.object_homes,
                0, groups[:-1], travel=gamma + 2, rng=rng,
            )

    def test_rejects_nonpositive_travel(self):
        inst, groups, rng, _ = simple_setup()
        with pytest.raises(SchedulingError, match="travel"):
            activation_rounds(
                inst, [t.tid for t in inst.transactions], inst.object_homes,
                0, groups, travel=0, rng=rng,
            )

    def test_subset_of_tids_only(self):
        inst, groups, rng, gamma = simple_setup(seed=5)
        subset = [t.tid for t in inst.transactions][:4]
        res = activation_rounds(
            inst, subset, inst.object_homes, 0, groups,
            travel=gamma + 2, rng=rng,
        )
        assert set(res.commits) == set(subset)

    def test_local_objects_enable_in_first_round(self):
        # when every object is group-local, all transactions are enabled in
        # round one of their phase (sigma = 1 -> psi = 1 -> one round)
        net = cluster(3, 3, gamma=4)
        clusters = net.topology.require("clusters")
        txns = []
        homes = {}
        for g, members in enumerate(clusters):
            for i, node in enumerate(members):
                obj = 10 * g + i
                txns.append(Transaction(len(txns), node, {obj}))
                homes[obj] = node
        inst = Instance(net, txns, homes)
        groups = [
            RoundGroup(gid=g, nodes=tuple(m)) for g, m in enumerate(clusters)
        ]
        res = activation_rounds(
            inst, [t.tid for t in inst.transactions], homes, 0, groups,
            travel=6, rng=np.random.default_rng(0),
        )
        assert res.rounds_used == 1
        assert res.fallback_count == 0


class TestTheoryFormulas:
    def test_psi_at_least_one(self):
        assert theoretical_psi(0, 10) == 1

    def test_psi_formula(self):
        import math
        sigma, m = 500, 100
        assert theoretical_psi(sigma, m) == math.ceil(
            sigma / (24 * math.log(m))
        )

    def test_zeta_formula(self):
        import math
        m = 50
        assert theoretical_zeta(1, m) == 2 * 40 * math.ceil(
            math.log(m) ** 2
        )
