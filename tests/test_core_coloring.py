"""Unit tests for the greedy weighted colouring (§2.3)."""

import numpy as np
import pytest

from repro.core import DependencyGraph, Instance, Transaction
from repro.core.coloring import greedy_color, order_vertices, validate_coloring
from repro.errors import SchedulingError
from repro.network import clique, line
from repro.workloads import random_k_subsets


def hot_clique_graph(n=6):
    inst = Instance(
        clique(n), [Transaction(i, i, {0}) for i in range(n)], {0: 0}
    )
    return DependencyGraph.build(inst)


class TestGreedyColor:
    def test_clique_in_h_gets_distinct_colors(self):
        h = hot_clique_graph(6)
        colors = greedy_color(h)
        assert len(set(colors.values())) == 6
        assert set(colors.values()) == {1, 2, 3, 4, 5, 6}

    def test_colors_are_hmax_multiples_plus_one(self):
        inst = Instance(
            line(12),
            [
                Transaction(0, 0, {0}),
                Transaction(1, 6, {0}),
                Transaction(2, 11, {0}),
            ],
            {0: 0},
        )
        h = DependencyGraph.build(inst)
        colors = greedy_color(h)
        hmax = h.h_max
        assert all((c - 1) % hmax == 0 for c in colors.values())

    def test_within_gamma_plus_one(self):
        rng = np.random.default_rng(0)
        inst = random_k_subsets(clique(20), w=6, k=3, rng=rng)
        h = DependencyGraph.build(inst)
        colors = greedy_color(h)
        assert max(colors.values()) <= h.weighted_degree + 1

    def test_validate_accepts_greedy_output(self):
        rng = np.random.default_rng(1)
        inst = random_k_subsets(clique(15), w=5, k=2, rng=rng)
        h = DependencyGraph.build(inst)
        validate_coloring(h, greedy_color(h))

    def test_validate_rejects_weight_violation(self):
        inst = Instance(
            line(8),
            [Transaction(0, 0, {0}), Transaction(1, 7, {0})],
            {0: 0},
        )
        h = DependencyGraph.build(inst)
        with pytest.raises(SchedulingError, match="differ"):
            validate_coloring(h, {0: 1, 1: 3})  # needs gap >= 7

    def test_validate_rejects_uncoloured_vertex(self):
        h = hot_clique_graph(3)
        with pytest.raises(SchedulingError, match="uncoloured"):
            validate_coloring(h, {0: 1, 1: 2})

    def test_validate_rejects_nonpositive_colour(self):
        h = hot_clique_graph(2)
        with pytest.raises(SchedulingError, match="non-positive"):
            validate_coloring(h, {0: 0, 1: 5})

    def test_isolated_vertices_all_get_colour_one(self):
        inst = Instance(
            clique(4),
            [Transaction(i, i, {i}) for i in range(4)],
            {i: i for i in range(4)},
        )
        h = DependencyGraph.build(inst)
        colors = greedy_color(h)
        assert set(colors.values()) == {1}


class TestOrdering:
    def test_id_order(self):
        h = hot_clique_graph(4)
        assert order_vertices(h, "id") == [0, 1, 2, 3]

    def test_degree_order_descending(self):
        # star in H: vertex 0 conflicts with everyone, others only with 0
        inst = Instance(
            clique(4),
            [
                Transaction(0, 0, {0, 1, 2}),
                Transaction(1, 1, {0}),
                Transaction(2, 2, {1}),
                Transaction(3, 3, {2}),
            ],
            {0: 0, 1: 0, 2: 0},
        )
        h = DependencyGraph.build(inst)
        order = order_vertices(h, "degree")
        assert order[0] == 0

    def test_random_order_is_permutation_and_seeded(self):
        h = hot_clique_graph(8)
        rng1 = np.random.default_rng(7)
        rng2 = np.random.default_rng(7)
        o1 = order_vertices(h, "random", rng1)
        o2 = order_vertices(h, "random", rng2)
        assert sorted(o1) == list(range(8))
        assert o1 == o2

    def test_random_order_without_rng_raises(self):
        with pytest.raises(SchedulingError, match="rng"):
            order_vertices(hot_clique_graph(3), "random")

    def test_unknown_strategy_raises(self):
        with pytest.raises(SchedulingError, match="unknown"):
            order_vertices(hot_clique_graph(3), "zigzag")

    def test_any_order_still_valid(self):
        rng = np.random.default_rng(3)
        inst = random_k_subsets(clique(12), w=4, k=2, rng=rng)
        h = DependencyGraph.build(inst)
        for strategy in ("id", "degree"):
            validate_coloring(h, greedy_color(h, order_vertices(h, strategy)))
        validate_coloring(
            h, greedy_color(h, order_vertices(h, "random", rng))
        )
