"""Unit tests for repro.network.graph."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.network.graph import Network, Topology


def triangle():
    return Network(3, [(0, 1, 1), (1, 2, 2), (0, 2, 4)])


class TestConstruction:
    def test_basic_properties(self):
        net = triangle()
        assert net.n == 3
        assert net.num_edges == 3
        assert list(net.nodes()) == [0, 1, 2]

    def test_edges_iterated_once_sorted(self):
        net = triangle()
        assert list(net.edges()) == [(0, 1, 1), (0, 2, 4), (1, 2, 2)]

    def test_default_topology_is_generic(self):
        assert triangle().topology.name == "generic"

    def test_rejects_nonpositive_node_count(self):
        with pytest.raises(GraphError):
            Network(0, [])

    def test_rejects_self_loop(self):
        with pytest.raises(GraphError, match="self-loop"):
            Network(2, [(0, 0, 1), (0, 1, 1)])

    def test_rejects_zero_weight(self):
        with pytest.raises(GraphError, match="positive integer"):
            Network(2, [(0, 1, 0)])

    def test_rejects_negative_weight(self):
        with pytest.raises(GraphError, match="positive integer"):
            Network(2, [(0, 1, -3)])

    def test_rejects_fractional_weight(self):
        with pytest.raises(GraphError, match="positive integer"):
            Network(2, [(0, 1, 1.5)])

    def test_accepts_integral_float_weight(self):
        net = Network(2, [(0, 1, 2.0)])
        assert net.edge_weight(0, 1) == 2

    def test_rejects_out_of_range_edge(self):
        with pytest.raises(GraphError, match="out of range"):
            Network(2, [(0, 5, 1)])

    def test_rejects_disconnected(self):
        with pytest.raises(GraphError, match="connected"):
            Network(4, [(0, 1, 1), (2, 3, 1)])

    def test_rejects_conflicting_duplicate_weights(self):
        with pytest.raises(GraphError, match="conflicting"):
            Network(2, [(0, 1, 1), (1, 0, 2)])

    def test_accepts_agreeing_duplicate_edge(self):
        net = Network(2, [(0, 1, 3), (1, 0, 3)])
        assert net.num_edges == 1

    def test_single_node_network(self):
        net = Network(1, [])
        assert net.n == 1
        assert net.diameter() == 0
        assert net.dist(0, 0) == 0


class TestAccessors:
    def test_neighbors_sorted(self):
        net = triangle()
        assert net.neighbors(1) == (0, 2)

    def test_degree(self):
        assert triangle().degree(0) == 2

    def test_edge_weight(self):
        net = triangle()
        assert net.edge_weight(1, 2) == 2
        assert net.edge_weight(2, 1) == 2

    def test_edge_weight_missing_raises(self):
        net = Network(3, [(0, 1, 1), (1, 2, 1)])
        with pytest.raises(GraphError, match="no edge"):
            net.edge_weight(0, 2)

    def test_has_edge(self):
        net = triangle()
        assert net.has_edge(0, 1)
        assert not net.has_edge(0, 0)


class TestShortestPaths:
    def test_dist_uses_cheaper_route(self):
        net = triangle()
        # direct 0-2 weighs 4; through 1 it is 1 + 2 = 3
        assert net.dist(0, 2) == 3

    def test_dist_symmetric(self):
        net = triangle()
        for u in range(3):
            for v in range(3):
                assert net.dist(u, v) == net.dist(v, u)

    def test_distance_matrix_matches_dist(self):
        net = triangle()
        mat = net.distance_matrix
        assert mat.dtype == np.int64
        for u in range(3):
            for v in range(3):
                assert mat[u, v] == net.dist(u, v)

    def test_shortest_path_endpoints_and_length(self):
        net = triangle()
        path = net.shortest_path(0, 2)
        assert path[0] == 0 and path[-1] == 2
        total = sum(
            net.edge_weight(a, b) for a, b in zip(path, path[1:])
        )
        assert total == net.dist(0, 2)

    def test_shortest_path_trivial(self):
        assert triangle().shortest_path(1, 1) == [1]

    def test_path_edges_exist(self):
        net = Network(
            5, [(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 4, 1), (0, 4, 10)]
        )
        path = net.shortest_path(0, 4)
        assert path == [0, 1, 2, 3, 4]

    def test_diameter_and_eccentricity(self):
        net = triangle()
        assert net.diameter() == 3
        assert net.eccentricity(0) == 3
        assert net.eccentricity(1) == 2

    def test_subset_diameter(self):
        net = triangle()
        assert net.subset_diameter([0, 1]) == 1
        assert net.subset_diameter([0, 2]) == 3
        assert net.subset_diameter([1]) == 0
        assert net.subset_diameter([]) == 0


class TestTopologyMetadata:
    def test_topology_get_and_require(self):
        topo = Topology("grid", {"rows": 3})
        assert topo.get("rows") == 3
        assert topo.get("cols", 7) == 7
        assert topo.require("rows") == 3
        with pytest.raises(KeyError, match="cols"):
            topo.require("cols")

    def test_network_carries_topology(self):
        topo = Topology("custom", {"x": 1})
        net = Network(2, [(0, 1, 1)], topo)
        assert net.topology is topo


class TestInterop:
    def test_to_networkx_round_trip(self):
        net = triangle()
        g = net.to_networkx()
        assert g.number_of_nodes() == 3
        assert g.number_of_edges() == 3
        assert g[1][2]["weight"] == 2
