"""Unit tests for object placement optimization."""

import numpy as np
import pytest

from repro.bounds import makespan_lower_bound
from repro.core import GreedyScheduler, Instance, Transaction
from repro.network import clique, grid, line
from repro.placement import median_node, optimize_homes, walk_optimal_home
from repro.workloads import random_k_subsets


class TestMedianNode:
    def test_line_center_minimizes_max(self):
        inst = Instance(
            line(10),
            [Transaction(0, 0, {0}), Transaction(1, 9, {0}),
             Transaction(2, 4, {0})],
            {0: 0},
        )
        assert median_node(inst, [0, 4, 9], "max") == 4

    def test_sum_objective_prefers_mass(self):
        inst = Instance(
            line(10),
            [Transaction(0, 0, {0}), Transaction(1, 1, {0}),
             Transaction(2, 2, {0}), Transaction(3, 9, {0})],
            {0: 0},
        )
        assert median_node(inst, [0, 1, 2, 9], "sum") in (1, 2)

    def test_anywhere_candidates(self):
        inst = Instance(
            line(9),
            [Transaction(0, 0, {0}), Transaction(1, 8, {0})],
            {0: 0},
        )
        mid = median_node(inst, [0, 8], "max", candidates=list(range(9)))
        assert mid == 4


class TestWalkOptimalHome:
    def test_line_extremal_home_wins(self):
        # walk from an end = span; from the middle = 1.5 * span
        inst = Instance(
            line(21),
            [Transaction(0, 0, {0}), Transaction(1, 10, {0}),
             Transaction(2, 20, {0})],
            {0: 10},
        )
        assert walk_optimal_home(inst, [0, 10, 20]) in (0, 20)

    def test_single_user(self):
        inst = Instance(line(5), [Transaction(0, 3, {0})], {0: 0})
        assert walk_optimal_home(inst, [3]) == 3


class TestOptimizeHomes:
    def test_homes_stay_on_requesters(self):
        rng = np.random.default_rng(0)
        inst = random_k_subsets(grid(5), w=5, k=2, rng=rng)
        for objective in ("walk", "max", "sum"):
            opt = optimize_homes(inst, objective)
            for obj in opt.objects:
                users = {t.node for t in opt.users(obj)}
                if users:
                    assert opt.home(obj) in users

    def test_walk_objective_never_raises_lower_bound(self):
        # exact walks for small user sets: picking the best requester can
        # only lower each object's walk, hence the certified bound
        for seed in range(5):
            rng = np.random.default_rng(seed)
            inst = random_k_subsets(line(16), w=8, k=2, rng=rng)
            base_lb = makespan_lower_bound(inst)
            opt_lb = makespan_lower_bound(optimize_homes(inst, "walk"))
            assert opt_lb <= base_lb

    def test_max_objective_shrinks_worst_first_leg(self):
        txns = [
            Transaction(0, 0, {0}),
            Transaction(1, 10, {0}),
            Transaction(2, 20, {0}),
        ]
        inst = Instance(line(21), txns, {0: 0})
        opt = optimize_homes(inst, "max")
        assert opt.home(0) == 10  # the 1-center of {0, 10, 20}

    def test_unused_objects_untouched(self):
        inst = Instance(
            clique(3), [Transaction(0, 0, {0})], {0: 0, 9: 2}
        )
        assert optimize_homes(inst).home(9) == 2

    def test_schedulable_after_rehoming(self):
        rng = np.random.default_rng(5)
        inst = random_k_subsets(grid(6), w=6, k=2, rng=rng)
        for objective in ("walk", "max"):
            opt = optimize_homes(inst, objective)
            GreedyScheduler().schedule(opt).validate()

    def test_anywhere_allows_non_requesters(self):
        txns = [Transaction(0, 0, {0}), Transaction(1, 8, {0})]
        inst = Instance(line(9), txns, {0: 0})
        opt = optimize_homes(inst, "max", anywhere=True)
        assert opt.home(0) == 4
