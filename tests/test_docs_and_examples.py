"""Documentation and example smoke tests.

Keeps the README quickstart snippet executable and every example script
runnable -- documentation that cannot rot silently.
"""

import pathlib
import re
import subprocess
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parents[1]
EXAMPLES = sorted((ROOT / "examples").glob("*.py"))


class TestReadme:
    def test_quickstart_snippet_executes(self):
        text = (ROOT / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)
        assert blocks, "README must contain a python quickstart block"
        exec(compile(blocks[0], "<readme>", "exec"), {})

    def test_mentions_all_deliverables(self):
        text = (ROOT / "README.md").read_text()
        for needle in (
            "EXPERIMENTS.md",
            "DESIGN.md",
            "pytest tests/",
            "benchmarks/",
            "examples/",
        ):
            assert needle in text

    def test_docs_exist_and_reference_sections(self):
        model = (ROOT / "docs" / "MODEL.md").read_text()
        algos = (ROOT / "docs" / "ALGORITHMS.md").read_text()
        assert "feasible" in model
        for section in ("§2.3", "§4", "§5", "§6", "§7", "§8"):
            assert section in algos, f"ALGORITHMS.md must cover {section}"

    def test_tutorial_code_blocks_execute(self):
        text = (ROOT / "docs" / "TUTORIAL.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)
        assert len(blocks) >= 7, "tutorial should stay substantive"
        # blocks share one namespace, exactly as a reader follows along
        namespace: dict = {}
        for i, block in enumerate(blocks):
            exec(compile(block, f"<tutorial block {i}>", "exec"), namespace)


class TestDesignAndExperimentsDocs:
    def test_design_lists_every_experiment(self):
        text = (ROOT / "DESIGN.md").read_text()
        for eid in [f"E{i}" for i in range(1, 16)]:
            assert f"| {eid} " in text, f"DESIGN.md missing {eid}"

    def test_experiments_md_has_verdicts(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        assert text.count("✅") >= 13
        for eid in [f"E{i}" for i in range(1, 16)]:
            assert f"| {eid} " in text, f"EXPERIMENTS.md missing {eid}"


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=ROOT,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), f"{script.name} produced no output"
