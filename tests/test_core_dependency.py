"""Unit tests for the dependency graph H (§2.3)."""

import pytest

from repro.core import DependencyGraph, Instance, Transaction
from repro.network import clique, line


def build(net, txns, homes):
    return DependencyGraph.build(Instance(net, txns, homes))


class TestBuild:
    def test_sharing_creates_edge_with_distance_weight(self):
        inst = Instance(
            line(6),
            [Transaction(0, 0, {0}), Transaction(1, 4, {0})],
            {0: 0},
        )
        h = DependencyGraph.build(inst)
        assert h.num_edges == 1
        assert h.neighbors(0) == {1: 4}
        assert h.neighbors(1) == {0: 4}

    def test_no_sharing_no_edges(self):
        inst = Instance(
            clique(3),
            [Transaction(0, 0, {0}), Transaction(1, 1, {1})],
            {0: 0, 1: 1},
        )
        h = DependencyGraph.build(inst)
        assert h.num_edges == 0
        assert h.max_degree == 0
        assert h.h_max == 1  # floor at 1 so Gamma math stays sane

    def test_multiple_shared_objects_single_edge(self):
        inst = Instance(
            clique(3),
            [Transaction(0, 0, {0, 1}), Transaction(1, 1, {0, 1})],
            {0: 0, 1: 0},
        )
        h = DependencyGraph.build(inst)
        assert h.num_edges == 1

    def test_vertices_cover_all_transactions(self):
        inst = Instance(
            clique(4),
            [Transaction(i, i, {0}) for i in range(4)],
            {0: 0},
        )
        h = DependencyGraph.build(inst)
        assert list(h.vertices()) == [0, 1, 2, 3]
        assert h.num_vertices == 4

    def test_hot_object_forms_clique_in_h(self):
        inst = Instance(
            clique(5),
            [Transaction(i, i, {0}) for i in range(5)],
            {0: 0},
        )
        h = DependencyGraph.build(inst)
        assert h.num_edges == 10
        assert h.max_degree == 4
        assert h.degree(2) == 4

    def test_weighted_degree(self):
        inst = Instance(
            line(10),
            [
                Transaction(0, 0, {0}),
                Transaction(1, 5, {0}),
                Transaction(2, 9, {0}),
            ],
            {0: 0},
        )
        h = DependencyGraph.build(inst)
        assert h.h_max == 9
        assert h.max_degree == 2
        assert h.weighted_degree == 18

    def test_restricted_build(self):
        inst = Instance(
            clique(4),
            [Transaction(i, i, {0}) for i in range(4)],
            {0: 0},
        )
        h = DependencyGraph.build(inst, tids=[0, 2])
        assert h.num_vertices == 2
        assert h.num_edges == 1
        with pytest.raises(KeyError):
            h.neighbors(1)

    def test_restricted_build_uses_global_distances(self):
        inst = Instance(
            line(8),
            [Transaction(0, 0, {0}), Transaction(1, 7, {0})],
            {0: 0},
        )
        h = DependencyGraph.build(inst, tids=[0, 1])
        assert h.neighbors(0)[1] == 7
