"""Unit tests for the incremental engine and the session API."""

import numpy as np
import pytest

from repro.core.dependency import DependencyGraph
from repro.core.greedy import GreedyScheduler
from repro.core.incremental import (
    GREEDY_FAMILY,
    DistanceMemo,
    IncrementalConflictGraph,
    IncrementalScheduler,
    SchedulerSession,
    open_session,
)
from repro.core.instance import Instance
from repro.core.transaction import Transaction
from repro.errors import SessionError
from repro.network import clique, grid, line
from repro.obs import MemoryRecorder
from repro.workloads import random_k_subsets


def _txn(tid, node, objs):
    return Transaction(tid, node, objs)


def _homes(n_objects, net, seed=0):
    rng = np.random.default_rng(seed)
    return {
        o: int(v)
        for o, v in enumerate(rng.integers(0, net.n, size=n_objects))
    }


class TestDistanceMemo:
    def test_dist_memoizes_symmetrically(self):
        net = grid(4)
        memo = DistanceMemo(net)
        d1 = memo.dist(0, 5)
        d2 = memo.dist(5, 0)
        assert d1 == d2 == int(net.dist(0, 5))
        assert memo.misses == 1
        assert memo.hits == 1

    def test_pair_distances_batches_misses(self):
        net = grid(4)
        memo = DistanceMemo(net)
        us = [0, 1, 2, 0]
        vs = [5, 6, 7, 5]
        ds = memo.pair_distances(us, vs)
        assert ds == [int(net.dist(u, v)) for u, v in zip(us, vs)]
        # dedup is across calls via the cache, not within a batch
        assert memo.misses == 4
        again = memo.pair_distances(us, vs)
        assert again == ds
        assert memo.misses == 4
        assert memo.hits == 4

    def test_stats_shape(self):
        memo = DistanceMemo(grid(3))
        memo.dist(0, 1)
        assert memo.stats() == {"hits": 0, "misses": 1, "size": 1}


class TestIncrementalConflictGraph:
    def _build(self, net, txns, threshold=0.5):
        g = IncrementalConflictGraph(net, rebuild_threshold=threshold)
        for t in txns:
            g.add(t)
        return g

    def test_matches_batch_dependency_graph(self):
        rng = np.random.default_rng(3)
        inst = random_k_subsets(clique(10), w=12, k=3, rng=rng)
        g = self._build(inst.network, inst.transactions)
        ref = DependencyGraph.build(inst)
        assert g.h_max == ref.h_max
        assert g.max_degree == ref.max_degree
        assert g.weighted_degree == ref.weighted_degree

    def test_refcounts_consistent_under_churn(self):
        rng = np.random.default_rng(4)
        net = clique(16)
        g = IncrementalConflictGraph(net)
        live = {}
        tid = 0
        for _ in range(120):
            if live and rng.random() < 0.45:
                victim = int(rng.choice(sorted(live)))
                g.remove(victim)
                del live[victim]
            else:
                free = sorted(set(range(net.n)) - {t.node for t in live.values()})
                if not free:
                    continue
                t = _txn(tid, int(rng.choice(free)),
                         rng.choice(8, size=2, replace=False))
                g.add(t)
                live[tid] = t
                tid += 1
            # refcount mirrors must equal a from-scratch rescan
            assert g.colors_used == len(set(g._slot.values()))
            assert g.max_degree == max(
                (len(n) for n in g._adj.values()), default=0
            )
            expected_h = max(
                (w for row in g._adj.values() for w in row.values()),
                default=0,
            )
            assert g.h_max == max(expected_h, 1)

    def test_slots_equal_batch_coloring_after_every_delta(self):
        rng = np.random.default_rng(5)
        net = clique(12)
        g = IncrementalConflictGraph(net)
        txns = [
            _txn(i, i, rng.choice(6, size=2, replace=False))
            for i in range(12)
        ]
        for t in txns:
            g.add(t)
        for victim in (0, 3, 7):
            g.remove(victim)
            live = [t for t in txns if t.tid in g]
            # recompute the batch fixpoint by hand: ascending-tid mex
            slots = {}
            for t in live:
                used = {
                    slots[u.tid]
                    for u in live
                    if u.tid < t.tid and u.tid in g._adj[t.tid]
                }
                j = 0
                while j in used:
                    j += 1
                slots[t.tid] = j
            assert {tid: g._slot[tid] for tid in slots} == slots

    def test_cascading_recolor(self):
        # a chain of conflicts: removing the head must ripple through
        net = line(8)
        g = IncrementalConflictGraph(net, rebuild_threshold=1.0)
        for i in range(6):
            # consecutive txns share an object -> path conflict graph
            g.add(_txn(i, i, [i, i + 1]))
        before = dict(g._slot)
        assert before[0] == 0
        examined, changed, rebuilt = g.remove(0)
        assert not rebuilt
        assert changed >= 1  # tid 1 drops to slot 0, cascade follows
        assert g._slot[1] == 0

    def test_full_rebuild_fallback_triggers(self):
        net = clique(24)
        # threshold so low any cascade exceeds the frontier on a big set
        g = IncrementalConflictGraph(net, rebuild_threshold=0.001)
        for i in range(20):
            g.add(_txn(i, i, [0]))  # a clique in the conflict graph
        assert g.full_rebuilds == 0 or g.full_rebuilds > 0  # built up
        base = g.full_rebuilds
        _, _, rebuilt = g.remove(0)
        assert rebuilt
        assert g.full_rebuilds == base + 1
        # and the coloring is still the batch fixpoint
        live = sorted(g._txn)
        assert [g._slot[t] for t in live] == list(range(len(live)))

    def test_h_max_shrinks_when_heaviest_edge_leaves(self):
        net = line(10)
        g = IncrementalConflictGraph(net)
        g.add(_txn(0, 0, [7]))
        g.add(_txn(1, 9, [7]))  # weight 9 edge
        g.add(_txn(2, 1, [8]))
        g.add(_txn(3, 2, [8]))  # weight 1 edge
        assert g.h_max == 9
        g.remove(1)
        assert g.h_max == 1

    def test_bad_threshold_rejected(self):
        with pytest.raises(SessionError, match="rebuild_threshold"):
            IncrementalConflictGraph(grid(3), rebuild_threshold=0.0)
        with pytest.raises(SessionError, match="rebuild_threshold"):
            IncrementalConflictGraph(grid(3), rebuild_threshold=1.5)

    def test_csr_graph_view_matches_batch(self):
        rng = np.random.default_rng(6)
        inst = random_k_subsets(clique(8), w=10, k=2, rng=rng)
        g = self._build(inst.network, inst.transactions)
        ref = DependencyGraph.build(inst)
        view = g.graph()
        assert sorted(view.vertices()) == sorted(t.tid for t in inst.transactions)
        assert view.h_max == ref.h_max
        assert view.max_degree == ref.max_degree


class TestSessionLifecycle:
    def test_greedy_family_defaults_to_incremental(self):
        for topo, net in (("clique", clique(6)), ("hypercube", grid(4))):
            sess = SchedulerSession(clique(6), object_homes=_homes(8, clique(6)))
            assert sess.mode == "incremental"
            assert sess.algo in GREEDY_FAMILY
            sess.close()

    def test_non_greedy_topology_falls_back_to_batch(self):
        net = grid(4)
        sess = SchedulerSession(net, object_homes=_homes(8, net))
        assert sess.mode == "batch"
        assert sess.algo == "grid"
        sess.close()

    def test_incremental_mode_on_non_family_algo_rejected(self):
        net = grid(4)
        with pytest.raises(SessionError, match="incremental"):
            SchedulerSession(
                net, algo="grid", mode="incremental",
                object_homes=_homes(8, net),
            )

    def test_incremental_algo_with_batch_mode_rejected(self):
        net = clique(6)
        with pytest.raises(SessionError, match="mode"):
            SchedulerSession(
                net, algo="incremental", mode="batch",
                object_homes=_homes(8, net),
            )

    def test_incremental_rejects_scheduler_options(self):
        net = clique(6)
        with pytest.raises(SessionError, match="options"):
            SchedulerSession(
                net, mode="incremental", object_homes=_homes(8, net),
                options={"order": "degree"},
            )

    def test_unknown_mode_and_home_policy_rejected(self):
        net = clique(6)
        with pytest.raises(SessionError, match="mode"):
            SchedulerSession(net, mode="sideways")
        with pytest.raises(SessionError, match="home_policy"):
            SchedulerSession(net, home_policy="wander")

    def test_closed_session_rejects_everything(self):
        net = clique(6)
        sess = open_session(net, object_homes=_homes(8, net))
        sess.submit(_txn(0, 0, [0]))
        sess.close()
        assert sess.closed
        with pytest.raises(SessionError, match="closed"):
            sess.submit(_txn(1, 1, [0]))
        with pytest.raises(SessionError, match="closed"):
            sess.commit([0])
        with pytest.raises(SessionError, match="closed"):
            sess.current_schedule()

    def test_context_manager_closes(self):
        net = clique(6)
        with open_session(net, object_homes=_homes(8, net)) as sess:
            pass
        assert sess.closed


class TestSubmitValidation:
    def _session(self):
        net = clique(8)
        return SchedulerSession(net, object_homes={0: 0, 1: 3})

    def test_duplicate_live_tid(self):
        sess = self._session()
        sess.submit(_txn(0, 0, [0]))
        with pytest.raises(SessionError, match="already live"):
            sess.submit(_txn(0, 1, [0]))

    def test_intra_batch_duplicate_tid(self):
        sess = self._session()
        with pytest.raises(SessionError, match="already live"):
            sess.submit([_txn(0, 0, [0]), _txn(0, 1, [0])])

    def test_node_out_of_range(self):
        sess = self._session()
        with pytest.raises(SessionError, match="node"):
            sess.submit(_txn(0, 99, [0]))

    def test_node_collision_with_live(self):
        sess = self._session()
        sess.submit(_txn(0, 2, [0]))
        with pytest.raises(SessionError, match="one per node"):
            sess.submit(_txn(1, 2, [1]))

    def test_intra_batch_node_collision(self):
        sess = self._session()
        with pytest.raises(SessionError, match="one per node"):
            sess.submit([_txn(0, 2, [0]), _txn(1, 2, [1])])

    def test_unhomed_object(self):
        sess = self._session()
        with pytest.raises(SessionError, match="unhomed"):
            sess.submit(_txn(0, 0, [7]))

    def test_failed_batch_leaves_session_untouched(self):
        sess = self._session()
        sess.submit(_txn(0, 0, [0]))
        with pytest.raises(SessionError):
            sess.submit([_txn(1, 1, [0]), _txn(2, 99, [1])])
        assert sess.active_ids() == [0]

    def test_commit_and_abort_require_live_tids(self):
        sess = self._session()
        sess.submit(_txn(0, 0, [0]))
        with pytest.raises(SessionError, match="not a live"):
            sess.commit([5])
        with pytest.raises(SessionError, match="not a live"):
            sess.abort([5])

    def test_empty_session_has_no_schedule(self):
        sess = self._session()
        with pytest.raises(SessionError, match="no schedule"):
            sess.current_schedule()


class TestSessionSemantics:
    def test_commit_times_match_schedule_read(self):
        net = clique(10)
        rng = np.random.default_rng(8)
        homes = _homes(6, net)
        sess = open_session(net, object_homes=homes)
        txns = [
            _txn(i, i, rng.choice(6, size=2, replace=False)) for i in range(8)
        ]
        sess.submit(txns)
        sched = sess.current_schedule()
        times = sess.commit([0, 1, 2])
        assert times == {t: sched.commit_times[t] for t in (0, 1, 2)}

    def test_run_epoch_matches_batch_schedule(self):
        net = clique(12)
        rng = np.random.default_rng(9)
        inst = random_k_subsets(net, w=10, k=2, rng=rng)
        sess = open_session(net, object_homes=dict(inst.object_homes))
        times, makespan = sess.run_epoch(inst.transactions)
        batch = GreedyScheduler().schedule(inst)
        assert times == batch.commit_times
        assert makespan == batch.makespan
        assert sess.active_count == 0

    def test_follow_home_policy_moves_objects(self):
        net = line(6)
        sess = open_session(
            net, algo="greedy", object_homes={0: 0}, home_policy="follow"
        )
        sess.submit([_txn(0, 2, [0]), _txn(1, 5, [0])])
        times = sess.commit()
        last = max(times, key=lambda t: (times[t], t))
        mover = {0: 2, 1: 5}[last]
        assert sess.homes()[0] == mover

    def test_static_home_policy_keeps_homes(self):
        net = line(6)
        sess = open_session(net, algo="greedy", object_homes={0: 0})
        sess.submit([_txn(0, 2, [0]), _txn(1, 5, [0])])
        sess.commit()
        assert sess.homes()[0] == 0

    def test_snapshot_is_json_safe_and_complete(self):
        import json

        net = clique(8)
        sess = open_session(net, object_homes=_homes(4, net))
        sess.submit([_txn(0, 0, [0, 1]), _txn(1, 1, [2])])
        sess.commit([0])
        snap = sess.snapshot()
        json.dumps(snap)  # must not raise
        assert snap["mode"] == "incremental"
        assert snap["epoch"] == 1
        assert [t["tid"] for t in snap["active"]] == [1]
        assert snap["stats"]["submitted"] == 2
        assert snap["stats"]["committed"] == 1

    def test_stats_counters(self):
        net = clique(8)
        sess = open_session(net, object_homes=_homes(4, net))
        sess.submit([_txn(i, i, [i % 4]) for i in range(4)])
        sess.commit([0, 1])
        sess.abort([2])
        s = sess.stats
        assert s["submitted"] == 4
        assert s["committed"] == 2
        assert s["aborted"] == 1
        assert s["active"] == 1
        assert "memo_hits" in s and "full_rebuilds" in s

    def test_session_delta_events_recorded(self):
        net = clique(8)
        rec = MemoryRecorder()
        sess = open_session(net, object_homes=_homes(4, net), recorder=rec)
        sess.submit([_txn(0, 0, [0]), _txn(1, 1, [0])])
        sess.commit([0])
        sess.abort([1])
        kinds = [e.kind for e in rec.trace().events]
        assert kinds == ["session_delta", "session_delta", "session_delta"]
        ops = [e.op for e in rec.trace().events]
        assert ops == ["submit", "commit", "abort"]
        counts = rec.trace().metrics["counters"]
        assert counts["session.submitted"] == 2
        assert counts["session.committed"] == 1
        assert counts["session.aborted"] == 1

    def test_batch_fallback_matches_facade(self):
        import repro

        net = grid(4)
        rng = np.random.default_rng(10)
        inst = random_k_subsets(net, w=8, k=2, rng=rng)
        sess = open_session(
            net, object_homes=dict(inst.object_homes),
            rng=np.random.default_rng(0),
        )
        assert sess.mode == "batch"
        sess.submit(inst.transactions)
        s = sess.current_schedule()
        ref = repro.schedule(inst, rng=np.random.default_rng(0))
        assert s.commit_times == ref.commit_times
        assert s.makespan == ref.makespan


class TestIncrementalScheduler:
    def test_one_shot_matches_greedy(self):
        rng = np.random.default_rng(11)
        inst = random_k_subsets(clique(10), w=8, k=2, rng=rng)
        inc = IncrementalScheduler().schedule(inst)
        ref = GreedyScheduler().schedule(inst)
        assert inc.commit_times == ref.commit_times
        assert inc.meta["engine"] == "incremental"
        inc.validate()

    def test_base_variants(self):
        rng = np.random.default_rng(12)
        inst = random_k_subsets(clique(10), w=8, k=2, rng=rng)
        for base in ("clique", "diameter"):
            sched = IncrementalScheduler(base=base)
            assert sched.name == f"incremental-{base}"
            s = sched.schedule(inst)
            s.validate()

    def test_certify_accepts_incremental_schedules(self):
        from repro.staticcheck import certify_schedule

        rng = np.random.default_rng(13)
        inst = random_k_subsets(grid(4), w=10, k=2, rng=rng)
        cert = certify_schedule(IncrementalScheduler().schedule(inst))
        tb = [c for c in cert.checks if c.name == "theorem_bound"][0]
        assert tb.passed
        assert "Gamma" in tb.detail
