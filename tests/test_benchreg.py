"""Bench-regression harness: snapshot schema, comparison gate, merging."""

from __future__ import annotations

import json

import pytest

from repro.benchreg import (
    BENCH_SPECS,
    REGRESSION_THRESHOLD,
    compare_snapshots,
    latest_snapshot_path,
    load_snapshot,
    merge_runs,
    next_snapshot_path,
    write_snapshot,
)
from repro.benchreg.harness import _time, calibrate
from repro.errors import ReproError


def _body(results):
    return {"calibration_s": 0.005, "quick": False, "results": results,
            "speedups": {}}


def _res(raw, normalized, group="g", kernel="reference"):
    return {"raw_s": raw, "normalized": normalized, "group": group,
            "kernel": kernel, "repeats": 5, "meta": {}}


class TestCompare:
    def test_no_regression_when_equal(self):
        base = _body({"a": _res(0.010, 2.0)})
        regressions, notes = compare_snapshots(base, base)
        assert regressions == [] and notes == []

    def test_regression_needs_both_raw_and_normalized(self):
        base = _body({"a": _res(0.010, 2.0)})
        # normalized blew past the threshold but raw barely moved:
        # calibration jitter, not a code regression
        cur = _body({"a": _res(0.011, 3.0)})
        assert compare_snapshots(base, cur)[0] == []
        # raw slowed but normalized tracked it (machine got slower)
        cur = _body({"a": _res(0.020, 2.1)})
        assert compare_snapshots(base, cur)[0] == []

    def test_real_regression_is_flagged(self):
        base = _body({"a": _res(0.010, 2.0)})
        cur = _body({"a": _res(0.015, 3.0)})
        regressions, _ = compare_snapshots(base, cur)
        assert len(regressions) == 1
        reg = regressions[0]
        assert reg.name == "a"
        assert reg.ratio == pytest.approx(1.5)
        assert "a:" in reg.describe()

    def test_threshold_boundary(self):
        base = _body({"a": _res(0.010, 2.0)})
        within = _body({"a": _res(0.010 * 1.19, 2.0 * 1.19)})
        assert compare_snapshots(base, within)[0] == []
        beyond = _body({"a": _res(0.010 * 1.21, 2.0 * 1.21)})
        assert len(compare_snapshots(base, beyond)[0]) == 1
        assert 0 < REGRESSION_THRESHOLD < 1

    def test_added_and_removed_become_notes(self):
        base = _body({"a": _res(0.01, 2.0), "gone": _res(0.01, 2.0)})
        cur = _body({"a": _res(0.01, 2.0), "new": _res(0.01, 2.0)})
        regressions, notes = compare_snapshots(base, cur)
        assert regressions == []
        assert any("new" in n for n in notes)
        assert any("gone" in n for n in notes)


class TestSnapshotIO:
    def test_roundtrip(self, tmp_path):
        body = _body({"a": _res(0.01, 2.0)})
        path = write_snapshot(body, tmp_path / "BENCH_1.json")
        loaded = load_snapshot(path)
        assert loaded["results"] == body["results"]
        assert loaded["bench_schema"] == 1
        assert "machine" in loaded and "created" in loaded

    def test_envelope_kind_is_checked(self, tmp_path):
        p = tmp_path / "BENCH_1.json"
        p.write_text(json.dumps(
            {"schema_version": 1, "kind": "wrong", "body": {}}
        ))
        with pytest.raises(ReproError, match="expected kind"):
            load_snapshot(p)

    def test_bench_schema_is_checked(self, tmp_path):
        p = tmp_path / "BENCH_1.json"
        p.write_text(json.dumps({
            "schema_version": 1, "kind": "bench_snapshot",
            "body": {"bench_schema": 99},
        }))
        with pytest.raises(ReproError, match="bench_schema"):
            load_snapshot(p)

    def test_numbering(self, tmp_path):
        assert latest_snapshot_path(tmp_path) is None
        assert next_snapshot_path(tmp_path).name == "BENCH_1.json"
        (tmp_path / "BENCH_2.json").write_text("{}")
        (tmp_path / "BENCH_10.json").write_text("{}")
        (tmp_path / "BENCH_x.json").write_text("{}")  # ignored: not numbered
        assert latest_snapshot_path(tmp_path).name == "BENCH_10.json"
        assert next_snapshot_path(tmp_path).name == "BENCH_11.json"


class TestMergeRuns:
    def test_median_votes_out_anomalous_pass(self):
        bodies = [
            _body({"a": _res(0.003, 0.6)}),   # anomalously fast window
            _body({"a": _res(0.010, 2.0)}),
            _body({"a": _res(0.011, 2.2)}),
        ]
        merged = merge_runs(bodies, reduce="median")
        assert merged["results"]["a"]["raw_s"] == pytest.approx(0.010)
        assert merged["merged_runs"] == 3

    def test_min_keeps_the_best(self):
        bodies = [
            _body({"a": _res(0.010, 2.0)}),
            _body({"a": _res(0.008, 1.6)}),
        ]
        merged = merge_runs(bodies, reduce="min")
        assert merged["results"]["a"]["raw_s"] == pytest.approx(0.008)

    def test_single_body_passthrough(self):
        body = _body({"a": _res(0.01, 2.0)})
        assert merge_runs([body]) is body

    def test_speedups_recomputed_from_merged_raws(self):
        bodies = [
            _body({"g/reference": _res(0.030, 6.0, kernel="reference"),
                   "g/vectorized": _res(0.010, 2.0, kernel="vectorized")}),
            _body({"g/reference": _res(0.032, 6.4, kernel="reference"),
                   "g/vectorized": _res(0.008, 1.6, kernel="vectorized")}),
            _body({"g/reference": _res(0.034, 6.8, kernel="reference"),
                   "g/vectorized": _res(0.009, 1.8, kernel="vectorized")}),
        ]
        merged = merge_runs(bodies, reduce="median")
        assert merged["speedups"]["g"]["speedup"] == pytest.approx(0.032 / 0.009)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            merge_runs([])
        with pytest.raises(ValueError):
            merge_runs([_body({}), _body({})], reduce="mean")


class TestHarnessPieces:
    def test_spec_inventory(self):
        names = {s.name for s in BENCH_SPECS}
        # the acceptance benchmark: dependency build + greedy colouring,
        # reference vs vectorized, at >= 512 transactions
        assert {"dependency_greedy/reference",
                "dependency_greedy/vectorized"} <= names
        for spec in BENCH_SPECS:
            if spec.group == "dependency_greedy":
                assert spec.meta["transactions"] >= 512

    def test_calibration_is_positive(self):
        assert calibrate() > 0

    def test_time_respects_budget_floor(self):
        spec = next(s for s in BENCH_SPECS
                    if s.name == "greedy_color/vectorized")
        raw, runs = _time(spec, budget_s=0.0)
        assert raw > 0
        assert runs >= 5  # the floor applies even with a zero budget


class TestCommittedSnapshot:
    def test_bench_4_meets_the_speedup_bar(self):
        import pathlib

        root = pathlib.Path(__file__).resolve().parent.parent
        body = load_snapshot(root / "BENCH_4.json")
        dep = body["speedups"]["dependency_greedy"]
        assert dep["speedup"] >= 3.0
        assert body["results"]["dependency_greedy/vectorized"]["meta"][
            "transactions"] >= 512


def _session_block(speedup=2.5):
    def _engine(total_s):
        return {
            "total_s": total_s,
            "epochs": 100,
            "throughput_txn_s": 3200.0 / total_s,
            "p50_latency_s": total_s / 200,
            "p99_latency_s": total_s / 100,
            "max_latency_s": total_s / 50,
        }

    return {
        "workload": {"topology": "grid", "nodes": 576, "window": 512,
                     "total": 3200},
        "incremental": _engine(1.0),
        "rebuild": _engine(speedup),
        "throughput_speedup": speedup,
    }


class TestSessionGate:
    def test_passes_at_or_above_threshold(self):
        from repro.benchreg import MIN_SESSION_SPEEDUP, check_session_gate

        body = _body({})
        body["session"] = _session_block(speedup=MIN_SESSION_SPEEDUP)
        ok, detail = check_session_gate(body)
        assert ok
        assert "txn/s" in detail and "p99" in detail

    def test_fails_below_threshold(self):
        from repro.benchreg import check_session_gate

        body = _body({})
        body["session"] = _session_block(speedup=1.4)
        ok, detail = check_session_gate(body)
        assert not ok
        assert "1.40x" in detail

    def test_fails_loudly_without_a_session_block(self):
        # a stale pre-session baseline must not pass silently
        from repro.benchreg import check_session_gate

        ok, detail = check_session_gate(_body({}))
        assert not ok
        assert "no session block" in detail

    def test_custom_threshold(self):
        from repro.benchreg import check_session_gate

        body = _body({})
        body["session"] = _session_block(speedup=2.5)
        assert check_session_gate(body, min_speedup=2.0)[0]
        assert not check_session_gate(body, min_speedup=3.0)[0]


class TestAttachSessionResults:
    def test_merges_results_speedups_and_block(self):
        from repro.benchreg import attach_session_results

        body = _body({"a": _res(0.010, 2.0)})
        block = _session_block(speedup=2.5)
        out = attach_session_results(body, block)
        assert out is body  # in place
        inc = body["results"]["session_rolling/incremental"]
        reb = body["results"]["session_rolling/rebuild"]
        assert inc["kernel"] == "vectorized"
        assert reb["kernel"] == "reference"
        assert inc["group"] == reb["group"] == "session_rolling"
        assert inc["raw_s"] == pytest.approx(1.0 / 100)
        assert inc["meta"]["p99_latency_s"] > 0
        sp = body["speedups"]["session_rolling"]
        assert sp["speedup"] == 2.5
        assert body["session"] is block

    def test_attached_entries_survive_the_generic_compare(self):
        from repro.benchreg import attach_session_results, compare_snapshots

        base = _body({"a": _res(0.010, 2.0)})
        attach_session_results(base, _session_block())
        fresh = json.loads(json.dumps(base))
        regressions, improvements = compare_snapshots(base, fresh)
        assert regressions == [] and improvements == []


class TestCommittedSessionSnapshot:
    def test_bench_8_meets_the_session_gate(self):
        import pathlib

        from repro.benchreg import check_session_gate

        root = pathlib.Path(__file__).resolve().parent.parent
        body = load_snapshot(root / "BENCH_8.json")
        ok, detail = check_session_gate(body)
        assert ok, detail
        block = body["session"]
        assert block["workload"]["total_transactions"] >= 100_000
        assert block["incremental"]["p99_latency_s"] > 0
        assert body["speedups"]["session_rolling"]["speedup"] >= 2.0
