"""MaskedNetwork: parity with a full rebuild, and laziness accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError, RecoveryError
from repro.faults.routing import degraded_network
from repro.network import MaskedNetwork, clique, grid, line, masked_csr
from repro.network.graph import Network


def _rebuilt(net: Network, down) -> Network:
    down = {(min(u, v), max(u, v)) for u, v in down}
    edges = [(u, v, w) for u, v, w in net.edges()
             if (u, v) not in down]
    return Network(net.n, edges, topology=net.topology)


DOWN_CASES = [
    (lambda: grid(6), [(0, 1)]),
    (lambda: grid(6), [(7, 8), (14, 20)]),
    (lambda: clique(8), [(4, 5), (0, 7)]),
]


class TestParityWithRebuild:
    @pytest.mark.parametrize("build,down", DOWN_CASES)
    def test_distance_matrix_matches(self, build, down):
        net = build()
        view = net.masked(down)
        oracle = _rebuilt(net, down)
        assert np.array_equal(view.distance_matrix, oracle.distance_matrix)

    @pytest.mark.parametrize("build,down", DOWN_CASES)
    def test_per_pair_dist_matches(self, build, down):
        net = build()
        view = net.masked(down)
        oracle = _rebuilt(net, down)
        rng = np.random.default_rng(3)
        for _ in range(30):
            u, v = rng.integers(0, net.n, size=2)
            assert view.dist(int(u), int(v)) == oracle.dist(int(u), int(v))

    @pytest.mark.parametrize("build,down", DOWN_CASES)
    def test_batched_pair_distances_match(self, build, down):
        net = build()
        view = net.masked(down)
        oracle = _rebuilt(net, down)
        rng = np.random.default_rng(4)
        us = rng.integers(0, net.n, size=50)
        vs = rng.integers(0, net.n, size=50)
        assert np.array_equal(
            view.pair_distances(us, vs), oracle.pair_distances(us, vs)
        )

    @pytest.mark.parametrize("build,down", DOWN_CASES)
    def test_shortest_paths_avoid_down_edges(self, build, down):
        net = build()
        view = net.masked(down)
        oracle = _rebuilt(net, down)
        downset = {(min(u, v), max(u, v)) for u, v in down}
        rng = np.random.default_rng(5)
        for _ in range(20):
            u, v = (int(x) for x in rng.integers(0, net.n, size=2))
            path = view.shortest_path(u, v)
            assert path[0] == u and path[-1] == v
            hops = list(zip(path, path[1:]))
            assert all((min(a, b), max(a, b)) not in downset for a, b in hops)
            length = sum(view.edge_weight(a, b) for a, b in hops)
            assert length == oracle.dist(u, v)

    def test_structure_surface(self):
        net = grid(5)
        view = net.masked([(0, 1)])
        assert isinstance(view, MaskedNetwork)
        assert view.n == net.n
        assert view.num_edges == net.num_edges - 1
        assert not view.has_edge(0, 1) and not view.has_edge(1, 0)
        assert 1 not in view.neighbors(0)
        assert view.topology.name == net.topology.name


class TestLaziness:
    def test_unaffected_rows_reuse_parent_distances(self):
        net = grid(20)  # 400 nodes
        net.distance_matrix
        net._ensure_pred()
        view = net.masked([(0, 1)])
        for u in range(net.n):
            view.dist(u, (u * 13 + 7) % net.n)
        # only sources whose shortest-path tree used (0, 1) re-solve;
        # on a 400-node grid that is a small corner, not all 400 rows
        assert 0 < view.dijkstra_solves < net.n // 4

    def test_full_matrix_solves_only_stale_rows(self):
        net = grid(12)
        net._ensure_pred()
        view = net.masked([(0, 1)])
        view.distance_matrix
        assert view.dijkstra_solves < net.n


class TestMaskedCsr:
    def test_zeroes_both_directions(self):
        net = grid(4)
        csr = masked_csr(net, [(0, 1)])
        dense = csr.toarray()
        assert dense[0, 1] == 0 and dense[1, 0] == 0
        assert csr.nnz == net._csr.nnz - 2

    def test_empty_down_returns_cached_csr(self):
        net = grid(4)
        assert masked_csr(net, []) is net._csr


class TestValidation:
    def test_nonexistent_edge_rejected(self):
        with pytest.raises(GraphError, match="no edge"):
            grid(4).masked([(0, 5)])

    def test_disconnection_rejected(self):
        with pytest.raises(GraphError, match="disconnects"):
            line(5).masked([(2, 3)])

    def test_empty_down_returns_self(self):
        net = grid(4)
        assert net.masked([]) is net


class TestDegradedNetwork:
    def test_returns_masked_view(self):
        net = grid(5)
        view = degraded_network(net, frozenset({(0, 1)}))
        assert isinstance(view, MaskedNetwork)

    def test_empty_down_is_identity(self):
        net = grid(5)
        assert degraded_network(net, frozenset()) is net

    def test_disconnection_raises_recovery_error(self):
        with pytest.raises(RecoveryError, match="disconnects the network"):
            degraded_network(line(6), frozenset({(1, 2)}))
