"""Unit tests for the line scheduler (§4, Theorem 2)."""

import numpy as np
import pytest

from repro.core import Instance, LineScheduler, Transaction
from repro.core.line import line_walk_length
from repro.errors import TopologyError
from repro.network import clique, line
from repro.sim import execute
from repro.workloads import line_span_instance, random_k_subsets


class TestWalkLength:
    def test_home_inside_span(self):
        assert line_walk_length(5, 2, 8) == 6 + 3  # span 6, nearer end 3

    def test_home_at_end(self):
        assert line_walk_length(2, 2, 8) == 6
        assert line_walk_length(8, 2, 8) == 6

    def test_home_left_of_span(self):
        assert line_walk_length(0, 3, 7) == 7

    def test_home_right_of_span(self):
        assert line_walk_length(9, 3, 7) == 6

    def test_single_point(self):
        assert line_walk_length(4, 4, 4) == 0


class TestLineScheduler:
    def test_requires_line_topology(self):
        rng = np.random.default_rng(0)
        inst = random_k_subsets(clique(8), w=4, k=2, rng=rng)
        with pytest.raises(TopologyError):
            LineScheduler().schedule(inst)

    def test_feasible_on_random_instances(self):
        rng = np.random.default_rng(1)
        for n in (8, 32, 100):
            inst = random_k_subsets(line(n), w=max(2, n // 4), k=2, rng=rng)
            s = LineScheduler().schedule(inst)
            s.validate()
            execute(s)

    def test_theorem2_four_ell_bound(self):
        rng = np.random.default_rng(2)
        for span in (3, 7, 15):
            inst = line_span_instance(line(64), w=8, k=2, max_span=span, rng=rng)
            s = LineScheduler().schedule(inst)
            s.validate()
            ell = LineScheduler.ell(inst)
            assert s.makespan <= 4 * ell
            assert s.makespan <= LineScheduler.theorem_bound(inst)

    def test_two_phases_even_odd_blocks(self):
        # objects spanning <= ell keep same-phase blocks independent;
        # check commits within one block increase left to right
        rng = np.random.default_rng(3)
        inst = line_span_instance(line(40), w=6, k=2, max_span=7, rng=rng)
        s = LineScheduler().schedule(inst)
        ell = s.meta["ell"]
        by_block: dict[int, list[tuple[int, int]]] = {}
        for t in inst.transactions:
            by_block.setdefault(t.node // ell, []).append(
                (t.node, s.time_of(t.tid))
            )
        for block_nodes in by_block.values():
            block_nodes.sort()
            times = [ct for _, ct in block_nodes]
            assert times == sorted(times)

    def test_parallelism_across_same_phase_blocks(self):
        # disjoint neighbour pairs => ell small => blocks run concurrently
        txns = [Transaction(i, i, {i // 2}) for i in range(16)]
        homes = {i: 2 * i for i in range(8)}
        inst = Instance(line(16), txns, homes)
        s = LineScheduler().schedule(inst)
        s.validate()
        # far better than sequential (16 steps)
        assert s.makespan <= 6

    def test_single_block_when_ell_covers_line(self):
        txns = [Transaction(0, 0, {0}), Transaction(1, 15, {0})]
        inst = Instance(line(16), txns, {0: 0})
        s = LineScheduler().schedule(inst)
        s.validate()
        assert s.meta["ell"] == 15
        assert s.makespan <= 4 * 15

    def test_meta_phase_markers(self):
        rng = np.random.default_rng(4)
        inst = random_k_subsets(line(24), w=4, k=2, rng=rng)
        s = LineScheduler().schedule(inst)
        assert s.meta["phase1_end"] <= s.meta["phase2_end"]
        assert s.meta["ell"] >= 1

    def test_object_never_needed_by_two_same_phase_blocks(self):
        rng = np.random.default_rng(5)
        inst = random_k_subsets(line(50), w=10, k=2, rng=rng)
        s = LineScheduler().schedule(inst)
        ell = s.meta["ell"]
        for obj in inst.objects:
            users = inst.users(obj)
            blocks = {t.node // ell for t in users}
            even = sorted(b for b in blocks if b % 2 == 0)
            odd = sorted(b for b in blocks if b % 2 == 1)
            assert len(even) <= 1, f"object {obj} spans even blocks {even}"
            assert len(odd) <= 1, f"object {obj} spans odd blocks {odd}"


class TestLineBoundaryCases:
    def test_single_node_line(self):
        inst = Instance(line(1), [Transaction(0, 0, {0})], {0: 0})
        s = LineScheduler().schedule(inst)
        assert s.makespan == 1

    def test_two_node_line(self):
        txns = [Transaction(0, 0, {0}), Transaction(1, 1, {0})]
        inst = Instance(line(2), txns, {0: 0})
        s = LineScheduler().schedule(inst)
        s.validate()
        assert s.makespan <= 4  # ell = 1, 4*ell bound

    def test_sparse_transactions(self):
        rng = np.random.default_rng(14)
        inst = random_k_subsets(line(40), w=5, k=2, rng=rng, density=0.4)
        s = LineScheduler().schedule(inst)
        s.validate()
        execute(s)

    def test_far_home_outside_spans(self):
        # object homed at the right end, all users on the left: the
        # repositioning period must absorb the long first leg
        txns = [Transaction(0, 0, {0}), Transaction(1, 3, {0})]
        inst = Instance(line(30), txns, {0: 29})
        s = LineScheduler().schedule(inst)
        s.validate()
        execute(s)
        assert s.makespan >= 26  # at least the trip from node 29
