"""Unit tests for workload generators and seeding."""

import numpy as np
import pytest

from repro.core.line import LineScheduler
from repro.network import clique, cluster, line, star
from repro.workloads import (
    DEFAULT_SEED,
    homes_at_random_requesters,
    hot_object_instance,
    line_span_instance,
    partitioned_instance,
    random_k_subsets,
    root_rng,
    spawn,
    zipf_k_subsets,
)


class TestSeeds:
    def test_root_rng_deterministic(self):
        assert root_rng(1).integers(0, 1000) == root_rng(1).integers(0, 1000)

    def test_root_rng_default_seed(self):
        a = root_rng().integers(0, 10**9)
        b = root_rng(DEFAULT_SEED).integers(0, 10**9)
        assert a == b

    def test_spawn_stable(self):
        a = spawn(3, "exp", 5, "trial").integers(0, 10**9)
        b = spawn(3, "exp", 5, "trial").integers(0, 10**9)
        assert a == b

    def test_spawn_key_sensitivity(self):
        a = spawn(3, "exp", 5).integers(0, 10**9)
        b = spawn(3, "exp", 6).integers(0, 10**9)
        assert a != b

    def test_spawn_order_sensitivity(self):
        a = spawn(3, "a", "b").integers(0, 10**9)
        b = spawn(3, "b", "a").integers(0, 10**9)
        assert a != b


class TestRandomKSubsets:
    def test_shape(self):
        rng = root_rng(0)
        inst = random_k_subsets(clique(10), w=6, k=3, rng=rng)
        assert inst.m == 10
        assert all(t.k == 3 for t in inst.transactions)
        assert inst.num_objects == 6

    def test_homes_at_requesters(self):
        rng = root_rng(1)
        inst = random_k_subsets(clique(10), w=4, k=2, rng=rng)
        assert inst.homes_at_requesters

    def test_density_below_one(self):
        rng = root_rng(2)
        inst = random_k_subsets(clique(20), w=4, k=2, rng=rng, density=0.5)
        assert inst.m == 10

    def test_rejects_bad_k(self):
        rng = root_rng(3)
        with pytest.raises(ValueError):
            random_k_subsets(clique(5), w=3, k=4, rng=rng)
        with pytest.raises(ValueError):
            random_k_subsets(clique(5), w=3, k=0, rng=rng)


class TestZipf:
    def test_skews_toward_low_ids(self):
        rng = root_rng(4)
        inst = zipf_k_subsets(clique(200), w=20, k=1, rng=rng, exponent=1.5)
        assert inst.load(0) > inst.load(19)

    def test_valid_instance(self):
        rng = root_rng(5)
        inst = zipf_k_subsets(clique(30), w=10, k=3, rng=rng)
        assert all(t.k == 3 for t in inst.transactions)


class TestHotObject:
    def test_object_zero_everywhere(self):
        rng = root_rng(6)
        inst = hot_object_instance(clique(12), w=6, k=3, rng=rng)
        assert inst.load(0) == 12
        assert all(0 in t.objects for t in inst.transactions)

    def test_k_one_only_hot(self):
        rng = root_rng(7)
        inst = hot_object_instance(clique(5), w=3, k=1, rng=rng)
        assert all(t.objects == frozenset({0}) for t in inst.transactions)


class TestPartitioned:
    def test_fully_local_stays_in_group(self):
        net = cluster(3, 4)
        groups = net.topology.require("clusters")
        rng = root_rng(8)
        inst = partitioned_instance(
            net, groups, objects_per_group=3, k=2, cross_fraction=0.0, rng=rng
        )
        for g, members in enumerate(groups):
            pool = set(range(g * 3, (g + 1) * 3))
            for node in members:
                t = inst.transaction_at(node)
                assert t.objects <= pool

    def test_cross_fraction_validated(self):
        net = cluster(2, 3)
        groups = net.topology.require("clusters")
        with pytest.raises(ValueError):
            partitioned_instance(net, groups, 2, 2, 1.5, root_rng(9))

    def test_k_capped_by_pool(self):
        net = cluster(2, 3)
        groups = net.topology.require("clusters")
        with pytest.raises(ValueError):
            partitioned_instance(net, groups, 2, 3, 0.0, root_rng(10))

    def test_on_star_rays(self):
        net = star(4, 6)
        rays = net.topology.require("rays")
        inst = partitioned_instance(
            net, rays, objects_per_group=3, k=2, cross_fraction=0.2,
            rng=root_rng(11),
        )
        # the center hosts no transaction in this workload
        assert inst.transaction_at(0) is None
        assert inst.m == 24


class TestLineSpan:
    def test_controls_ell(self):
        # w * max_span covers the line, so every requester span stays
        # within the window and ell <= 1.5 * max_span
        net = line(60)
        rng = root_rng(12)
        inst = line_span_instance(net, w=12, k=2, max_span=5, rng=rng)
        for obj in inst.objects:
            users = inst.users(obj)
            if users:
                nodes = [t.node for t in users]
                assert max(nodes) - min(nodes) <= 5
        assert LineScheduler.ell(inst) <= 8  # 1.5 * 5 rounded up

    def test_sparse_windows_stretch_to_cover(self):
        # too few objects to honour max_span: windows stretch to ceil(n/w)
        net = line(60)
        inst = line_span_instance(net, w=4, k=1, max_span=2, rng=root_rng(15))
        for obj in inst.objects:
            users = inst.users(obj)
            if users:
                nodes = [t.node for t in users]
                assert max(nodes) - min(nodes) <= 15

    def test_rejects_negative_span(self):
        with pytest.raises(ValueError):
            line_span_instance(line(10), 2, 1, -1, root_rng(13))


class TestHomes:
    def test_homes_pick_requesters(self):
        from repro.core import Transaction

        txns = [Transaction(0, 3, {0}), Transaction(1, 5, {0})]
        homes = homes_at_random_requesters(txns, 2, root_rng(14))
        assert homes[0] in (3, 5)
        assert homes[1] == 0  # unused -> fallback node


class TestGeneratorSeedDeterminism:
    """Every generator is a pure function of its seeded rng."""

    @staticmethod
    def _same(a, b):
        assert a.transactions == b.transactions
        assert a.object_homes == b.object_homes

    def _pair(self, build):
        return build(root_rng(77)), build(root_rng(77))

    def test_random_k_subsets(self):
        net = clique(10)
        self._same(*self._pair(lambda r: random_k_subsets(net, 8, 2, r)))

    def test_zipf_k_subsets(self):
        net = clique(10)
        self._same(*self._pair(lambda r: zipf_k_subsets(net, 8, 2, r)))

    def test_hot_object_instance(self):
        net = clique(10)
        self._same(*self._pair(lambda r: hot_object_instance(net, 8, 3, r)))

    def test_partitioned_instance(self):
        net = cluster(3, 4)
        groups = [range(4), range(4, 8), range(8, 12)]
        self._same(*self._pair(
            lambda r: partitioned_instance(net, groups, 3, 2, 0.25, r)
        ))

    def test_line_span_instance(self):
        net = line(12)
        self._same(*self._pair(
            lambda r: line_span_instance(net, 6, 2, 3, r)
        ))

    def test_homes_at_random_requesters(self):
        from repro.core import Transaction

        txns = [Transaction(0, 3, {0, 1}), Transaction(1, 5, {0})]
        h1 = homes_at_random_requesters(txns, 3, root_rng(21))
        h2 = homes_at_random_requesters(txns, 3, root_rng(21))
        assert h1 == h2


class TestArrivalStreams:
    def _nets(self):
        return clique(8)

    def test_poisson_stream_deterministic(self):
        from repro.workloads import PoissonStream

        net = self._nets()
        a = PoissonStream(net, w=6, k=2, rate=0.8, rng=spawn(5, "p"))
        b = PoissonStream(net, w=6, k=2, rate=0.8, rng=spawn(5, "p"))
        assert a.object_homes == b.object_homes
        assert a.window(0, 40) == b.window(0, 40)

    def test_mmpp_stream_deterministic_and_bursty(self):
        from repro.workloads import MMPPStream

        net = self._nets()
        mk = lambda: MMPPStream(net, w=6, k=2, rate_low=0.1, rate_high=3.0,
                                switch=0.05, rng=spawn(5, "m"))
        a, b = mk(), mk()
        assert a.window(0, 120) == b.window(0, 120)

    def test_adversarial_stream_deterministic(self):
        from repro.workloads import AdversarialStream

        net = self._nets()
        mk = lambda: AdversarialStream(net, w=6, k=2, rho=0.5, burst=3,
                                       rng=spawn(5, "a"))
        a, b = mk(), mk()
        assert a.window(0, 60) == b.window(0, 60)

    def test_adversarial_rho_b_bound(self):
        from repro.workloads import AdversarialStream

        net = self._nets()
        s = AdversarialStream(net, w=6, k=2, rho=0.7, burst=5,
                              rng=spawn(5, "bound"))
        times = [a.release for a in s.window(0, 100)]
        assert times, "adversary must inject something"
        # (rho, b)-bounded: every interval I carries <= rho*|I| + b
        for i in range(len(times)):
            for j in range(i, len(times)):
                span = times[j] - times[i] + 1
                assert (j - i + 1) <= 0.7 * span + 5 + 1e-9

    def test_adversarial_maximizes_contention(self):
        from repro.workloads import AdversarialStream

        net = self._nets()
        s = AdversarialStream(net, w=6, k=2, rho=0.5, burst=4,
                              rng=spawn(5, "hot"))
        arrivals = s.window(0, 40)
        assert all(0 in a.txn.objects for a in arrivals)  # hot object

    def test_windows_must_be_contiguous(self):
        from repro.errors import InstanceError
        from repro.workloads import PoissonStream

        s = PoissonStream(self._nets(), w=6, k=2, rate=1.0,
                          rng=spawn(5, "c"))
        s.window(0, 10)
        with pytest.raises(InstanceError, match="contiguous"):
            s.window(20, 30)

    def test_limit_and_take(self):
        from repro.workloads import PoissonStream

        s = PoissonStream(self._nets(), w=6, k=2, rate=1.0,
                          rng=spawn(5, "t"), limit=7)
        got = s.take(100)
        assert len(got) == 7
        assert s.exhausted
        assert [a.txn.tid for a in got] == list(range(7))

    def test_stream_validation(self):
        from repro.errors import InstanceError
        from repro.workloads import MMPPStream, PoissonStream

        net = self._nets()
        with pytest.raises(InstanceError):
            PoissonStream(net, w=2, k=5, rate=1.0, rng=spawn(5, "v"))
        with pytest.raises(InstanceError):
            PoissonStream(net, w=4, k=2, rate=0.0, rng=spawn(5, "v"))
        with pytest.raises(InstanceError):
            MMPPStream(net, w=4, k=2, rate_low=2.0, rate_high=1.0,
                       switch=0.5, rng=spawn(5, "v"))
