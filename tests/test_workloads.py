"""Unit tests for workload generators and seeding."""

import numpy as np
import pytest

from repro.core.line import LineScheduler
from repro.network import clique, cluster, line, star
from repro.workloads import (
    DEFAULT_SEED,
    homes_at_random_requesters,
    hot_object_instance,
    line_span_instance,
    partitioned_instance,
    random_k_subsets,
    root_rng,
    spawn,
    zipf_k_subsets,
)


class TestSeeds:
    def test_root_rng_deterministic(self):
        assert root_rng(1).integers(0, 1000) == root_rng(1).integers(0, 1000)

    def test_root_rng_default_seed(self):
        a = root_rng().integers(0, 10**9)
        b = root_rng(DEFAULT_SEED).integers(0, 10**9)
        assert a == b

    def test_spawn_stable(self):
        a = spawn(3, "exp", 5, "trial").integers(0, 10**9)
        b = spawn(3, "exp", 5, "trial").integers(0, 10**9)
        assert a == b

    def test_spawn_key_sensitivity(self):
        a = spawn(3, "exp", 5).integers(0, 10**9)
        b = spawn(3, "exp", 6).integers(0, 10**9)
        assert a != b

    def test_spawn_order_sensitivity(self):
        a = spawn(3, "a", "b").integers(0, 10**9)
        b = spawn(3, "b", "a").integers(0, 10**9)
        assert a != b


class TestRandomKSubsets:
    def test_shape(self):
        rng = root_rng(0)
        inst = random_k_subsets(clique(10), w=6, k=3, rng=rng)
        assert inst.m == 10
        assert all(t.k == 3 for t in inst.transactions)
        assert inst.num_objects == 6

    def test_homes_at_requesters(self):
        rng = root_rng(1)
        inst = random_k_subsets(clique(10), w=4, k=2, rng=rng)
        assert inst.homes_at_requesters

    def test_density_below_one(self):
        rng = root_rng(2)
        inst = random_k_subsets(clique(20), w=4, k=2, rng=rng, density=0.5)
        assert inst.m == 10

    def test_rejects_bad_k(self):
        rng = root_rng(3)
        with pytest.raises(ValueError):
            random_k_subsets(clique(5), w=3, k=4, rng=rng)
        with pytest.raises(ValueError):
            random_k_subsets(clique(5), w=3, k=0, rng=rng)


class TestZipf:
    def test_skews_toward_low_ids(self):
        rng = root_rng(4)
        inst = zipf_k_subsets(clique(200), w=20, k=1, rng=rng, exponent=1.5)
        assert inst.load(0) > inst.load(19)

    def test_valid_instance(self):
        rng = root_rng(5)
        inst = zipf_k_subsets(clique(30), w=10, k=3, rng=rng)
        assert all(t.k == 3 for t in inst.transactions)


class TestHotObject:
    def test_object_zero_everywhere(self):
        rng = root_rng(6)
        inst = hot_object_instance(clique(12), w=6, k=3, rng=rng)
        assert inst.load(0) == 12
        assert all(0 in t.objects for t in inst.transactions)

    def test_k_one_only_hot(self):
        rng = root_rng(7)
        inst = hot_object_instance(clique(5), w=3, k=1, rng=rng)
        assert all(t.objects == frozenset({0}) for t in inst.transactions)


class TestPartitioned:
    def test_fully_local_stays_in_group(self):
        net = cluster(3, 4)
        groups = net.topology.require("clusters")
        rng = root_rng(8)
        inst = partitioned_instance(
            net, groups, objects_per_group=3, k=2, cross_fraction=0.0, rng=rng
        )
        for g, members in enumerate(groups):
            pool = set(range(g * 3, (g + 1) * 3))
            for node in members:
                t = inst.transaction_at(node)
                assert t.objects <= pool

    def test_cross_fraction_validated(self):
        net = cluster(2, 3)
        groups = net.topology.require("clusters")
        with pytest.raises(ValueError):
            partitioned_instance(net, groups, 2, 2, 1.5, root_rng(9))

    def test_k_capped_by_pool(self):
        net = cluster(2, 3)
        groups = net.topology.require("clusters")
        with pytest.raises(ValueError):
            partitioned_instance(net, groups, 2, 3, 0.0, root_rng(10))

    def test_on_star_rays(self):
        net = star(4, 6)
        rays = net.topology.require("rays")
        inst = partitioned_instance(
            net, rays, objects_per_group=3, k=2, cross_fraction=0.2,
            rng=root_rng(11),
        )
        # the center hosts no transaction in this workload
        assert inst.transaction_at(0) is None
        assert inst.m == 24


class TestLineSpan:
    def test_controls_ell(self):
        # w * max_span covers the line, so every requester span stays
        # within the window and ell <= 1.5 * max_span
        net = line(60)
        rng = root_rng(12)
        inst = line_span_instance(net, w=12, k=2, max_span=5, rng=rng)
        for obj in inst.objects:
            users = inst.users(obj)
            if users:
                nodes = [t.node for t in users]
                assert max(nodes) - min(nodes) <= 5
        assert LineScheduler.ell(inst) <= 8  # 1.5 * 5 rounded up

    def test_sparse_windows_stretch_to_cover(self):
        # too few objects to honour max_span: windows stretch to ceil(n/w)
        net = line(60)
        inst = line_span_instance(net, w=4, k=1, max_span=2, rng=root_rng(15))
        for obj in inst.objects:
            users = inst.users(obj)
            if users:
                nodes = [t.node for t in users]
                assert max(nodes) - min(nodes) <= 15

    def test_rejects_negative_span(self):
        with pytest.raises(ValueError):
            line_span_instance(line(10), 2, 1, -1, root_rng(13))


class TestHomes:
    def test_homes_pick_requesters(self):
        from repro.core import Transaction

        txns = [Transaction(0, 3, {0}), Transaction(1, 5, {0})]
        homes = homes_at_random_requesters(txns, 2, root_rng(14))
        assert homes[0] in (3, 5)
        assert homes[1] == 0  # unused -> fallback node
