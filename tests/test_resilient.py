"""Unit tests for the fault-aware online runtime (repro.online.resilient)."""

import numpy as np
import pytest

from repro.core import Transaction
from repro.errors import FaultError, OverloadError
from repro.faults import (
    FaultPlan,
    LinkFailure,
    NodeCrash,
    ObjectStall,
    RetryPolicy,
    random_fault_plan,
)
from repro.network import clique, cluster, grid, line
from repro.online import (
    AdmissionControl,
    OnlineWorkload,
    TimedTransaction,
    poisson_workload,
    run_online,
    run_resilient,
)
from repro.sim import InvariantSanitizer
from repro.workloads import root_rng


def tiny_workload(releases=(0, 2, 5)):
    net = line(8)
    txns = [
        Transaction(0, 0, {0}),
        Transaction(1, 4, {0}),
        Transaction(2, 7, {1}),
    ]
    arrivals = [TimedTransaction(releases[i], txns[i]) for i in range(3)]
    return OnlineWorkload(net, arrivals, {0: 0, 1: 7})


def stream(net, count, seed, rate=1.0):
    return poisson_workload(net, w=max(4, count // 3), k=2, rate=rate,
                            count=count, rng=root_rng(seed))


class TestAdmissionControl:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError, match="high_water"):
            AdmissionControl(0)
        with pytest.raises(ValueError, match="policy"):
            AdmissionControl(4, "panic")

    def test_policies_enumerated(self):
        for policy in ("defer", "shed", "strict"):
            assert AdmissionControl(2, policy).policy == policy


class TestEmptyPlanParity:
    """Acceptance criterion: empty plan reproduces run_online exactly."""

    @pytest.mark.parametrize(
        "net", [clique(16), grid(4), line(10), cluster(3, 4, 5)],
        ids=lambda n: n.topology.name,
    )
    def test_field_by_field(self, net):
        wl = stream(net, count=min(14, net.n), seed=net.n)
        healthy = run_online(wl)
        res = run_resilient(wl)
        assert res.schedule is not None
        assert res.schedule.commit_times == healthy.schedule.commit_times
        assert res.commits == healthy.schedule.commit_times
        assert res.release == healthy.release
        assert res.makespan == healthy.makespan
        assert res.response_times == healthy.response_times
        assert res.mean_response == healthy.mean_response
        assert res.max_response == healthy.max_response

    def test_no_recovery_work_on_empty_plan(self):
        res = run_resilient(tiny_workload())
        rep = res.report
        assert rep.retries == rep.reroutes == rep.rehomed == 0
        assert rep.fault_count == 0
        assert rep.commit_rate == 1.0
        assert not rep.lost and not rep.shed

    def test_explicit_empty_plan_same_as_none(self):
        wl = tiny_workload()
        assert (
            run_resilient(wl, FaultPlan()).commits
            == run_resilient(wl).commits
        )


class TestLiveFaultAbsorption:
    def test_repairable_plan_commits_everything(self):
        net = grid(5)
        for seed in range(4):
            wl = stream(net, count=16, seed=seed)
            horizon = run_online(wl).makespan
            plan = random_fault_plan(
                net, horizon, root_rng(100 + seed), intensity=2.0,
                objects=wl.instance.objects,
            )
            san = InvariantSanitizer()
            res = run_resilient(wl, plan, sanitizer=san)
            assert res.report.committed == wl.m
            assert res.report.commit_rate == 1.0
            assert san.violations == []
            assert san.checks > 0

    def test_transient_link_failure_delays_not_drops(self):
        wl = tiny_workload()
        healthy = run_online(wl)
        # cut the only route from obj 0's home toward txn 1 for a while
        plan = FaultPlan([LinkFailure(1, 2, 0, 12)])
        res = run_resilient(wl, plan)
        assert res.report.committed == wl.m
        assert res.makespan >= healthy.makespan
        assert res.report.retries > 0

    def test_reroute_around_failed_link(self):
        # clique offers detours, so a down link reroutes instead of waiting
        net = clique(6)
        txns = [Transaction(0, 5, {0})]
        wl = OnlineWorkload(net, [TimedTransaction(0, txns[0])], {0: 0})
        plan = FaultPlan([LinkFailure(0, 5, 0, 50)])
        res = run_resilient(wl, plan)
        assert res.report.committed == 1
        assert res.report.reroutes >= 1
        assert res.report.retries == 0

    def test_object_stall_backs_off(self):
        wl = tiny_workload()
        plan = FaultPlan([ObjectStall(0, 0, 6)])
        res = run_resilient(wl, plan)
        assert res.report.committed == wl.m
        assert res.report.retries > 0

    def test_permanent_partition_raises_fault_error(self):
        # node 7 is unreachable forever: the backoff budget must run out
        net = line(8)
        wl = OnlineWorkload(
            net, [TimedTransaction(0, Transaction(0, 7, {0}))], {0: 0}
        )
        plan = FaultPlan([LinkFailure(6, 7, 0, None)])
        with pytest.raises(FaultError, match="retry budget"):
            run_resilient(wl, plan, policy=RetryPolicy(max_retries=3))

    def test_plan_validated_against_network(self):
        wl = tiny_workload()
        with pytest.raises(FaultError, match="unknown"):
            run_resilient(wl, FaultPlan([NodeCrash(99, 1)]))

    def test_deterministic_given_same_inputs(self):
        wl = stream(grid(4), count=12, seed=7)
        plan = random_fault_plan(
            wl.instance.network, 40, root_rng(8), intensity=1.5,
            objects=wl.instance.objects,
        )
        a = run_resilient(wl, plan)
        b = run_resilient(wl, plan)
        assert a.commits == b.commits
        assert a.report == b.report


class TestCrashRecovery:
    def test_lease_dies_with_node_and_object_reauctioned(self):
        # obj 0 (home 0) flies toward txn 0 at node 4; node 4 crashes
        # mid-flight, so the lease dies, the object re-homes, and the
        # next-best waiter (txn 1 at node 2) wins the re-auction.
        net = line(8)
        wl = OnlineWorkload(
            net,
            [
                TimedTransaction(0, Transaction(0, 4, {0})),
                TimedTransaction(1, Transaction(1, 2, {0})),
            ],
            {0: 0},
        )
        plan = FaultPlan([NodeCrash(4, 3)])
        res = run_resilient(wl, plan)
        assert res.report.rehomed == 1
        assert res.commits.keys() == {1}
        assert dict(res.report.lost) == {0: "node 4 crashed"}
        assert res.schedule is None  # partial commit map is not a Schedule
        rep = res.report
        assert rep.committed + len(rep.lost) + len(rep.shed) == rep.released

    def test_home_crash_makes_object_unrecoverable(self):
        net = line(4)
        wl = OnlineWorkload(
            net, [TimedTransaction(2, Transaction(0, 3, {0}))], {0: 0}
        )
        res = run_resilient(wl, FaultPlan([NodeCrash(0, 1)]))
        assert res.report.committed == 0
        assert len(res.report.lost) == 1
        assert "unrecoverable" in res.report.lost[0][1]

    def test_crash_accounting_identity_random(self):
        net = grid(4)
        for seed in range(3):
            wl = stream(net, count=12, seed=50 + seed)
            plan = random_fault_plan(
                net, 40, root_rng(60 + seed), intensity=1.0,
                objects=wl.instance.objects, crash_rate=0.3,
            )
            san = InvariantSanitizer()
            res = run_resilient(wl, plan, sanitizer=san)
            rep = res.report
            assert rep.committed + len(rep.lost) + len(rep.shed) == wl.m
            assert san.violations == []


class TestAdmissionPolicies:
    def test_defer_commits_everything_eventually(self):
        wl = stream(grid(4), count=14, seed=11, rate=3.0)
        res = run_resilient(wl, admission=AdmissionControl(3, "defer"))
        assert res.report.committed == wl.m
        assert res.report.deferred_admissions > 0
        assert not res.report.shed

    def test_shed_refuses_past_high_water(self):
        wl = stream(grid(4), count=14, seed=11, rate=3.0)
        res = run_resilient(wl, admission=AdmissionControl(3, "shed"))
        rep = res.report
        assert rep.shed  # the burst must overflow a high-water of 3
        assert rep.committed + len(rep.shed) == wl.m
        assert rep.commit_rate + rep.shed_fraction == pytest.approx(1.0)
        assert all("high-water" in reason for _, reason in rep.shed)
        assert res.schedule is None

    def test_strict_raises_overload(self):
        wl = stream(grid(4), count=14, seed=11, rate=3.0)
        with pytest.raises(OverloadError, match="high-water"):
            run_resilient(wl, admission=AdmissionControl(1, "strict"))

    def test_wide_high_water_is_invisible(self):
        wl = stream(grid(4), count=10, seed=12)
        plain = run_resilient(wl)
        gated = run_resilient(wl, admission=AdmissionControl(10**6, "shed"))
        assert gated.commits == plain.commits


class TestReportRendering:
    def test_render_and_as_dict(self):
        wl = stream(grid(4), count=12, seed=13, rate=3.0)
        res = run_resilient(wl, admission=AdmissionControl(3, "shed"))
        rep = res.report
        text = rep.render()
        assert f"committed {rep.committed}/{rep.released}" in text
        assert "sanitizer" in text
        d = rep.as_dict()
        for key in ("commit_rate", "shed_fraction", "retries", "violations"):
            assert key in d

    def test_e18_runs_and_is_deterministic(self):
        from repro.experiments import run_experiment

        table = run_experiment("e18", seed=321, quick=True)
        assert {row["policy"] for row in table.rows} == {
            "resilient", "resilient-admit", "epoch-replay"
        }
        for row in table.rows:
            assert row["violations"] == 0.0
            if row["policy"] == "resilient":
                assert row["commit_rate"] == 1.0
        again = run_experiment("e18", seed=321, quick=True)
        assert again.rows == table.rows
