"""Tests for the exact branch-and-bound scheduler."""

import itertools

import numpy as np
import pytest

from repro.bounds import makespan_lower_bound, optimal_schedule
from repro.bounds.exact import _list_schedule
from repro.core import GreedyScheduler, Instance, Transaction
from repro.errors import SchedulingError
from repro.network import clique, line
from repro.sim import execute
from repro.workloads import random_k_subsets


def brute_force_optimum(instance):
    """Minimum list-schedule makespan over every commit permutation."""
    tids = [t.tid for t in instance.transactions]
    best = None
    for perm in itertools.permutations(tids):
        mk = max(_list_schedule(instance, list(perm)).values())
        best = mk if best is None else min(best, mk)
    return best


class TestOptimalSchedule:
    def test_matches_brute_force_on_random_tinies(self):
        for seed in range(8):
            rng = np.random.default_rng(seed)
            inst = random_k_subsets(clique(6), w=3, k=2, rng=rng, density=1.0)
            opt = optimal_schedule(inst)
            opt.validate()
            assert opt.makespan == brute_force_optimum(inst)

    def test_matches_brute_force_on_line(self):
        for seed in range(5):
            rng = np.random.default_rng(100 + seed)
            inst = random_k_subsets(line(6), w=3, k=2, rng=rng)
            opt = optimal_schedule(inst)
            assert opt.makespan == brute_force_optimum(inst)

    def test_never_beats_lower_bound_nor_loses_to_greedy(self):
        for seed in range(8):
            rng = np.random.default_rng(200 + seed)
            inst = random_k_subsets(clique(7), w=4, k=2, rng=rng)
            opt = optimal_schedule(inst)
            greedy = GreedyScheduler().schedule(inst)
            assert makespan_lower_bound(inst) <= opt.makespan <= greedy.makespan

    def test_executes_in_simulator(self):
        rng = np.random.default_rng(5)
        inst = random_k_subsets(clique(6), w=3, k=2, rng=rng)
        execute(optimal_schedule(inst))

    def test_hand_case_two_conflicting(self):
        # two txns share an object at distance 4: one commits at 1, the
        # other 4 steps later
        txns = [Transaction(0, 0, {0}), Transaction(1, 4, {0})]
        inst = Instance(line(5), txns, {0: 0})
        assert optimal_schedule(inst).makespan == 5

    def test_hand_case_independent_parallel(self):
        txns = [Transaction(i, i, {i}) for i in range(4)]
        inst = Instance(clique(4), txns, {i: i for i in range(4)})
        assert optimal_schedule(inst).makespan == 1

    def test_order_matters_case(self):
        # object 0 used at nodes 0 and 5; object 1 at nodes 5 and 0.
        # Committing both endpoints in the right interleaving avoids a
        # double round trip.
        txns = [Transaction(0, 0, {0, 1}), Transaction(1, 5, {0, 1})]
        inst = Instance(line(6), txns, {0: 0, 1: 5})
        opt = optimal_schedule(inst)
        # whichever commits first waits for the far object (5), the other
        # follows after the 5-step hand-off
        assert opt.makespan == 10

    def test_limit_enforced(self):
        rng = np.random.default_rng(6)
        inst = random_k_subsets(clique(12), w=4, k=2, rng=rng)
        with pytest.raises(SchedulingError, match="m <= 10"):
            optimal_schedule(inst)

    def test_meta_reports_proof_kind(self):
        txns = [Transaction(0, 0, {0})]
        inst = Instance(clique(2), txns, {0: 0})
        opt = optimal_schedule(inst)
        assert opt.meta["proved"] in ("lb", "search")


class TestTrueApproximationRatios:
    """With OPT in hand, measure the schedulers' *true* ratios (tiny m)."""

    def test_clique_greedy_true_ratio_within_theorem(self):
        for seed in range(6):
            rng = np.random.default_rng(300 + seed)
            inst = random_k_subsets(clique(7), w=4, k=2, rng=rng)
            opt = optimal_schedule(inst).makespan
            greedy = GreedyScheduler().schedule(inst).makespan
            # Theorem 1: O(k) with k = 2; generous constant
            assert greedy <= 3 * 2 * opt + 1

    def test_line_scheduler_true_ratio(self):
        from repro.core import LineScheduler

        for seed in range(6):
            rng = np.random.default_rng(400 + seed)
            inst = random_k_subsets(line(8), w=4, k=2, rng=rng)
            opt = optimal_schedule(inst).makespan
            ls = LineScheduler().schedule(inst).makespan
            assert ls <= 6 * opt + 4  # Theorem 2's constant factor
