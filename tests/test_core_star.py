"""Unit tests for the star scheduler (§7, Theorem 5)."""

import numpy as np
import pytest

from repro.core import Instance, StarScheduler, Transaction
from repro.core.star import ray_segments
from repro.errors import TopologyError
from repro.network import clique, star
from repro.sim import execute
from repro.workloads import partitioned_instance, random_k_subsets


class TestRaySegments:
    def test_exponential_lengths(self):
        # beta = 7: segments at depths 1, 2-3, 4-7 -> positions [0,1), [1,3), [3,7)
        assert ray_segments(7) == [(0, 1), (1, 3), (3, 7)]

    def test_truncated_last_segment(self):
        assert ray_segments(5) == [(0, 1), (1, 3), (3, 5)]

    def test_beta_one(self):
        assert ray_segments(1) == [(0, 1)]

    def test_covers_every_position_once(self):
        for beta in (1, 2, 3, 7, 10, 31, 33):
            covered = []
            for start, stop in ray_segments(beta):
                covered.extend(range(start, stop))
            assert covered == list(range(beta))


class TestStarScheduler:
    def test_requires_star_topology(self):
        rng = np.random.default_rng(0)
        inst = random_k_subsets(clique(8), w=4, k=2, rng=rng)
        with pytest.raises(TopologyError):
            StarScheduler().schedule(inst)

    @pytest.mark.parametrize("alpha,beta", [(2, 3), (3, 7), (5, 10), (8, 15)])
    def test_feasible_across_geometries(self, alpha, beta):
        rng = np.random.default_rng(alpha * 100 + beta)
        net = star(alpha, beta)
        inst = random_k_subsets(net, w=max(4, net.n // 4), k=2, rng=rng)
        s = StarScheduler().schedule(inst, rng)
        s.validate()
        execute(s)

    def test_center_transaction_commits_first(self):
        net = star(3, 7)
        rng = np.random.default_rng(1)
        inst = random_k_subsets(net, w=8, k=2, rng=rng)
        s = StarScheduler().schedule(inst, rng)
        center_t = inst.transaction_at(0)
        assert center_t is not None
        assert s.time_of(center_t.tid) == min(s.commit_times.values())

    def test_periods_execute_in_ring_order(self):
        net = star(4, 7)
        rng = np.random.default_rng(2)
        inst = random_k_subsets(net, w=8, k=2, rng=rng)
        s = StarScheduler().schedule(inst, rng)
        rays = net.topology.require("rays")
        ring_of = {}
        for ray in rays:
            for seg_idx, (a, b) in enumerate(ray_segments(7)):
                for node in ray[a:b]:
                    ring_of[node] = seg_idx
        windows: dict[int, tuple[int, int]] = {}
        for t in inst.transactions:
            if t.node == 0:
                continue
            ring = ring_of[t.node]
            ct = s.time_of(t.tid)
            lo, hi = windows.get(ring, (ct, ct))
            windows[ring] = (min(lo, ct), max(hi, ct))
        rings = sorted(windows)
        for a, b in zip(rings, rings[1:]):
            assert windows[a][1] < windows[b][0]

    def test_ray_local_workload_fast(self):
        net = star(6, 7)
        rays = net.topology.require("rays")
        rng = np.random.default_rng(3)
        inst = partitioned_instance(
            net, rays, objects_per_group=3, k=2, cross_fraction=0.0, rng=rng
        )
        s = StarScheduler().schedule(inst, rng)
        s.validate()
        # segments of each ring run in parallel: far below sequential 42
        assert s.makespan < 42

    def test_no_center_transaction(self):
        net = star(2, 4)
        txns = [Transaction(0, 1, {0}), Transaction(1, 5, {0})]
        inst = Instance(net, txns, {0: 1})
        s = StarScheduler().schedule(inst)
        s.validate()

    def test_meta_period_choices(self):
        net = star(3, 7)
        rng = np.random.default_rng(4)
        inst = random_k_subsets(net, w=6, k=2, rng=rng)
        s = StarScheduler().schedule(inst, rng)
        assert s.meta["eta"] == 3
        assert len(s.meta["period_choices"]) <= 3
        assert all(
            c.split(":")[1] in ("greedy", "rounds")
            for c in s.meta["period_choices"]
        )

    def test_theorem_ratio_positive(self):
        net = star(3, 7)
        rng = np.random.default_rng(5)
        inst = random_k_subsets(net, w=6, k=2, rng=rng)
        assert StarScheduler.theorem_ratio(inst) > 0


class TestStarTravelBudgetEdgeCases:
    def test_object_homed_at_outer_end_needed_in_ring_one(self):
        # the travel budget for ring 1 must cover a trip from the outer
        # end of a ray (home) to the innermost segment
        net = star(3, 15)
        rays = net.topology.require("rays")
        inner = rays[0][0]       # depth 1 of ray 0
        outer = rays[1][-1]      # depth 15 of ray 1
        txns = [
            Transaction(0, inner, {0}),
            Transaction(1, outer, {0}),
        ]
        inst = Instance(net, txns, {0: outer})
        rng = np.random.default_rng(0)
        s = StarScheduler().schedule(inst, rng)
        s.validate()
        execute(s)
        # ring-1 commit must wait for the cross-star trip (>= 16)
        assert s.time_of(0) >= net.dist(outer, inner)

    def test_all_objects_cross_rings(self):
        # objects shared between the innermost and outermost rings force
        # every period to re-position; all must stay feasible
        net = star(4, 15)
        rays = net.topology.require("rays")
        txns = []
        homes = {}
        tid = 0
        for obj, ray in enumerate(rays):
            txns.append(Transaction(tid, ray[0], {obj})); tid += 1
            txns.append(Transaction(tid, ray[-1], {obj})); tid += 1
            homes[obj] = ray[0]
        inst = Instance(net, txns, homes)
        rng = np.random.default_rng(1)
        s = StarScheduler().schedule(inst, rng)
        s.validate()
        execute(s)

    def test_single_ray_degenerates_to_path(self):
        net = star(1, 8)
        rng = np.random.default_rng(2)
        inst = random_k_subsets(net, w=4, k=2, rng=rng)
        s = StarScheduler().schedule(inst, rng)
        s.validate()
