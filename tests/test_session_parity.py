"""Property tests: sessions are a faithful rolling view of the batch path.

The redesigned session API promises that after ANY interleaving of
submit/commit/abort deltas, ``current_schedule()`` equals what the batch
scheduler would produce on a fresh :class:`Instance` built from the live
window -- field by field (commit times plus the five reported meta
fields).  These tests drive random interleavings per topology family:

* greedy family (clique) -- the incremental engine's repair fixpoint must
  match ``GreedyScheduler`` exactly, including under ``follow`` homes and
  aggressive full-rebuild thresholds;
* grid/line -- the batch-fallback sessions must match their deterministic
  topology schedulers;
* star/cluster -- rng-consuming schedulers, checked one read per session
  with the generator reseeded on both sides.

Plus directed repair-frontier edge cases: committing the lowest tid of a
conflict chain (maximal cascade) and a threshold so small every delta
takes the full-recolor fallback.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dispatch import resolve_scheduler
from repro.core.greedy import GreedyScheduler
from repro.core.incremental import SchedulerSession, open_session
from repro.core.instance import Instance
from repro.core.transaction import Transaction
from repro.network import clique, cluster, grid, line, star

_META_FIELDS = ("colors_used", "h_max", "delta", "gamma", "offset")


def _homes_for(net, rng, n_objects):
    return {
        o: int(v)
        for o, v in enumerate(rng.integers(0, net.n, size=n_objects))
    }


def _live_instance(sess):
    """A fresh, fully validated Instance over the session's live window."""
    txns = [
        Transaction(rec["tid"], rec["node"], rec["objects"])
        for rec in sess.snapshot()["active"]
    ]
    used = sorted({o for t in txns for o in t.objects})
    homes = sess.homes()
    return Instance(sess.network, txns, {o: homes[o] for o in used})


def _assert_matches_batch(sess, scheduler):
    """current_schedule() == the batch scheduler on the live window."""
    inst = _live_instance(sess)
    got = sess.current_schedule()
    want = scheduler.schedule(inst)
    assert got.commit_times == want.commit_times
    assert got.makespan == want.makespan
    # topology schedulers report a subset of the greedy meta fields;
    # greedy/diameter references carry all five, so the incremental
    # engine is held to the full field-by-field contract
    for field in _META_FIELDS:
        if field in want.meta:
            assert got.meta[field] == want.meta[field], field
    got.validate()


def _replay(sess, ops, rng, n_objects, check=None):
    """Drive an op program against a session, checking after every step.

    ``ops`` is a list of ("submit" | "commit" | "abort") labels; the rng
    fills in batch sizes, nodes, and object sets deterministically.
    Nodes are drawn from the free set so the one-txn-per-node invariant
    holds by construction.
    """
    next_tid = sess.active_count
    for op in ops:
        live = sess.active_ids()
        if op == "submit":
            taken = {sess.snapshot()["active"][i]["node"] for i in range(len(live))}
            free = [v for v in range(sess.network.n) if v not in taken]
            if not free:
                continue
            count = min(len(free), int(rng.integers(1, 4)))
            nodes = rng.choice(len(free), size=count, replace=False)
            batch = []
            for off in nodes:
                k = int(rng.integers(1, 3))
                objs = rng.choice(n_objects, size=k, replace=False)
                batch.append(Transaction(next_tid, free[int(off)], objs))
                next_tid += 1
            sess.submit(batch)
        elif live:
            count = int(rng.integers(1, len(live) + 1))
            picked = [live[int(i)] for i in rng.choice(len(live), size=count, replace=False)]
            if op == "commit":
                sess.commit(picked)
            else:
                sess.abort(picked)
        if check is not None and sess.active_count:
            check(sess)
    return next_tid


_OP = st.sampled_from(["submit", "submit", "commit", "abort"])
_PROGRAMS = st.lists(_OP, min_size=4, max_size=12)
_SEEDS = st.integers(min_value=0, max_value=2**31 - 1)


class TestGreedyFamilyParity:
    """Incremental repair == batch greedy, any interleaving."""

    @given(seed=_SEEDS, ops=_PROGRAMS)
    @settings(max_examples=25, deadline=None)
    def test_incremental_matches_batch_greedy(self, seed, ops):
        net = clique(10)
        rng = np.random.default_rng(seed)
        sess = open_session(
            net, algo="greedy", object_homes=_homes_for(net, rng, 8)
        )
        assert sess.mode == "incremental"
        ref = GreedyScheduler()
        _replay(sess, ops, rng, 8, check=lambda s: _assert_matches_batch(s, ref))

    @given(seed=_SEEDS, ops=_PROGRAMS)
    @settings(max_examples=15, deadline=None)
    def test_follow_homes_stay_in_lockstep(self, seed, ops):
        """Under the follow policy the batch view uses the moved homes."""
        net = clique(8)
        rng = np.random.default_rng(seed)
        sess = open_session(
            net,
            algo="greedy",
            object_homes=_homes_for(net, rng, 6),
            home_policy="follow",
        )
        ref = GreedyScheduler()
        _replay(sess, ops, rng, 6, check=lambda s: _assert_matches_batch(s, ref))

    @given(seed=_SEEDS, ops=_PROGRAMS)
    @settings(max_examples=15, deadline=None)
    def test_full_rebuild_fallback_preserves_parity(self, seed, ops):
        """A tiny threshold forces the recolor-all path; parity must hold."""
        net = clique(8)
        rng = np.random.default_rng(seed)
        sess = open_session(
            net,
            algo="greedy",
            object_homes=_homes_for(net, rng, 4),
            rebuild_threshold=0.001,
        )
        ref = GreedyScheduler()
        _replay(sess, ops, rng, 4, check=lambda s: _assert_matches_batch(s, ref))
        if sess.active_count:
            assert sess.stats["full_rebuilds"] >= 0


class TestBatchFallbackParity:
    """Non-greedy topologies route reads through the batch scheduler."""

    @given(seed=_SEEDS, ops=_PROGRAMS)
    @settings(max_examples=15, deadline=None)
    def test_grid_session_matches_topology_scheduler(self, seed, ops):
        net = grid(3, 4)
        rng = np.random.default_rng(seed)
        sess = open_session(net, object_homes=_homes_for(net, rng, 8))
        assert sess.mode == "batch"
        ref = resolve_scheduler(topology="grid")
        _replay(sess, ops, rng, 8, check=lambda s: _assert_matches_batch(s, ref))

    @given(seed=_SEEDS, ops=_PROGRAMS)
    @settings(max_examples=15, deadline=None)
    def test_line_session_matches_topology_scheduler(self, seed, ops):
        net = line(9)
        rng = np.random.default_rng(seed)
        sess = open_session(net, object_homes=_homes_for(net, rng, 6))
        ref = resolve_scheduler(topology="line")
        _replay(sess, ops, rng, 6, check=lambda s: _assert_matches_batch(s, ref))

    @given(seed=_SEEDS)
    @settings(max_examples=15, deadline=None)
    def test_star_and_cluster_single_read_parity(self, seed):
        """rng-consuming schedulers: one read, generator reseeded per side."""
        for net in (star(3, 2), cluster(3, 3)):
            rng = np.random.default_rng(seed)
            homes = _homes_for(net, rng, 6)
            sess = open_session(
                net, object_homes=homes, rng=np.random.default_rng(seed)
            )
            nodes = rng.choice(net.n, size=min(4, net.n), replace=False)
            txns = [
                Transaction(i, int(v), rng.choice(6, size=2, replace=False))
                for i, v in enumerate(nodes)
            ]
            sess.submit(txns)
            got = sess.current_schedule()
            ref = resolve_scheduler(topology=net.topology.name)
            want = ref.schedule(_live_instance(sess), np.random.default_rng(seed))
            assert got.commit_times == want.commit_times
            assert got.makespan == want.makespan


class TestRepairFrontierEdgeCases:
    """Directed worst cases for the dirty-neighborhood repair."""

    def _chain_session(self, n=10):
        # txn i conflicts with txn i+1 through shared object i: a path in
        # the conflict graph, so recoloring the head can cascade end to end
        net = clique(n + 1)
        homes = {o: 0 for o in range(n)}
        sess = open_session(net, algo="greedy", object_homes=homes)
        txns = [Transaction(i, i, [j for j in (i - 1, i) if 0 <= j < n - 1] or [0])
                for i in range(n)]
        sess.submit(txns)
        return sess

    def test_committing_chain_head_cascades_and_stays_exact(self):
        sess = self._chain_session()
        before = sess.stats["repairs_examined"]
        sess.commit([0])
        assert sess.stats["repairs_examined"] >= before
        _assert_matches_batch(sess, GreedyScheduler())

    def test_committing_chain_interior_stays_exact(self):
        sess = self._chain_session()
        sess.commit([4, 5])
        _assert_matches_batch(sess, GreedyScheduler())

    def test_abort_then_resubmit_same_node_stays_exact(self):
        sess = self._chain_session(6)
        sess.abort([2])
        sess.submit(Transaction(99, 2, [1, 2]))
        _assert_matches_batch(sess, GreedyScheduler())

    def test_empty_then_refill_resets_cleanly(self):
        net = clique(6)
        sess = open_session(net, algo="greedy", object_homes={0: 0, 1: 1})
        sess.submit([Transaction(0, 0, [0]), Transaction(1, 1, [0, 1])])
        sess.commit()
        assert sess.active_count == 0
        sess.submit([Transaction(2, 3, [1]), Transaction(3, 4, [0, 1])])
        _assert_matches_batch(sess, GreedyScheduler())

    def test_threshold_one_never_falls_back(self):
        net = clique(8)
        rng = np.random.default_rng(3)
        sess = open_session(
            net,
            algo="greedy",
            object_homes=_homes_for(net, rng, 4),
            rebuild_threshold=1.0,
        )
        _replay(sess, ["submit", "commit", "submit", "abort", "submit"], rng, 4)
        if sess.active_count:
            _assert_matches_batch(sess, GreedyScheduler())


class TestDiameterVariantParity:
    @given(seed=_SEEDS, ops=_PROGRAMS)
    @settings(max_examples=10, deadline=None)
    def test_diameter_base_matches_its_batch_scheduler(self, seed, ops):
        net = clique(8)
        rng = np.random.default_rng(seed)
        sess = open_session(
            net, algo="diameter", object_homes=_homes_for(net, rng, 6)
        )
        assert sess.mode == "incremental"
        ref = resolve_scheduler("diameter")
        _replay(sess, ops, rng, 6, check=lambda s: _assert_matches_batch(s, ref))
