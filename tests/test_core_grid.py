"""Unit tests for the grid scheduler (§5, Theorem 3)."""

import numpy as np
import pytest

from repro.core import GridScheduler, Instance, Transaction
from repro.errors import TopologyError
from repro.network import clique, grid, grid_node
from repro.sim import execute
from repro.workloads import random_k_subsets


class TestSubgridSide:
    def test_explicit_side_wins(self):
        rng = np.random.default_rng(0)
        inst = random_k_subsets(grid(8), w=8, k=2, rng=rng)
        assert GridScheduler(side=3).subgrid_side(inst) == 3

    def test_theory_side_clamped_to_grid(self):
        rng = np.random.default_rng(1)
        inst = random_k_subsets(grid(6), w=12, k=1, rng=rng)
        side = GridScheduler().subgrid_side(inst)
        assert 1 <= side <= 6

    def test_smaller_xi_factor_smaller_side(self):
        rng = np.random.default_rng(2)
        inst = random_k_subsets(grid(16), w=16, k=2, rng=rng)
        s_small = GridScheduler(xi_factor=0.5).subgrid_side(inst)
        s_big = GridScheduler(xi_factor=27.0).subgrid_side(inst)
        assert s_small <= s_big


class TestGridScheduler:
    def test_requires_grid_topology(self):
        rng = np.random.default_rng(0)
        inst = random_k_subsets(clique(9), w=4, k=2, rng=rng)
        with pytest.raises(TopologyError):
            GridScheduler().schedule(inst)

    @pytest.mark.parametrize("side", [1, 2, 3, 5, 8])
    def test_feasible_for_any_subgrid_side(self, side):
        rng = np.random.default_rng(side)
        inst = random_k_subsets(grid(8), w=8, k=2, rng=rng)
        s = GridScheduler(side=side).schedule(inst)
        s.validate()
        execute(s)

    def test_feasible_on_rectangular_grid(self):
        rng = np.random.default_rng(3)
        inst = random_k_subsets(grid(4, 10), w=6, k=2, rng=rng)
        s = GridScheduler(side=3).schedule(inst)
        s.validate()

    def test_single_subgrid_degenerates_to_greedy_shape(self):
        rng = np.random.default_rng(4)
        inst = random_k_subsets(grid(5), w=6, k=2, rng=rng)
        s = GridScheduler(side=5).schedule(inst)
        assert s.meta["subgrids"] == 1

    def test_subgrids_execute_sequentially(self):
        # with a forced 2x2 side on a 4x4 grid, the four subgrids' commit
        # windows must not interleave (strict boustrophedon order)
        rng = np.random.default_rng(5)
        inst = random_k_subsets(grid(4), w=4, k=2, rng=rng)
        s = GridScheduler(side=2).schedule(inst)
        s.validate()
        windows = {}
        for t in inst.transactions:
            r, c = divmod(t.node, 4)
            key = (r // 2, c // 2)
            ct = s.time_of(t.tid)
            lo, hi = windows.get(key, (ct, ct))
            windows[key] = (min(lo, ct), max(hi, ct))
        order = [(0, 0), (1, 0), (1, 1), (0, 1)]  # boustrophedon for 2x2
        for a, b in zip(order, order[1:]):
            if a in windows and b in windows:
                assert windows[a][1] < windows[b][0]

    def test_boustrophedon_order_three_columns(self):
        # column 0 top->bottom, column 1 bottom->top, column 2 top->bottom
        rng = np.random.default_rng(6)
        inst = random_k_subsets(grid(6), w=4, k=2, rng=rng)
        s = GridScheduler(side=2).schedule(inst)
        first_commit = {}
        for t in inst.transactions:
            r, c = divmod(t.node, 6)
            key = (r // 2, c // 2)
            first_commit[key] = min(
                first_commit.get(key, 10**9), s.time_of(t.tid)
            )
        expected = [
            (0, 0), (1, 0), (2, 0),
            (2, 1), (1, 1), (0, 1),
            (0, 2), (1, 2), (2, 2),
        ]
        times = [first_commit[k] for k in expected if k in first_commit]
        assert times == sorted(times)

    def test_hand_built_instance_exact_behaviour(self):
        # two transactions in opposite corners sharing one object
        net = grid(4)
        txns = [
            Transaction(0, grid_node(0, 0, 4), {0}),
            Transaction(1, grid_node(3, 3, 4), {0}),
        ]
        inst = Instance(net, txns, {0: grid_node(0, 0, 4)})
        s = GridScheduler(side=2).schedule(inst)
        s.validate()
        # the object must cross distance 6 between the two commits
        assert s.time_of(1) - s.time_of(0) >= 6

    def test_theorem_ratio_shape(self):
        rng = np.random.default_rng(7)
        inst = random_k_subsets(grid(8), w=8, k=2, rng=rng)
        assert GridScheduler.theorem_ratio(inst) > 0


class TestGridBoundaryCases:
    def test_single_row_grid(self):
        rng = np.random.default_rng(10)
        inst = random_k_subsets(grid(1, 12), w=4, k=2, rng=rng)
        s = GridScheduler(side=3).schedule(inst)
        s.validate()
        execute(s)

    def test_single_column_grid(self):
        rng = np.random.default_rng(11)
        inst = random_k_subsets(grid(12, 1), w=4, k=2, rng=rng)
        s = GridScheduler(side=4).schedule(inst)
        s.validate()

    def test_partial_subgrids_on_rectangular(self):
        # 5x7 grid with side 3 leaves ragged 2x1-ish partial subgrids
        rng = np.random.default_rng(12)
        inst = random_k_subsets(grid(5, 7), w=5, k=2, rng=rng)
        s = GridScheduler(side=3).schedule(inst)
        s.validate()
        execute(s)

    def test_one_by_one_grid(self):
        net = grid(1, 1)
        inst = Instance(net, [Transaction(0, 0, {0})], {0: 0})
        s = GridScheduler().schedule(inst)
        assert s.makespan == 1

    def test_sparse_transactions(self):
        # only a few nodes host transactions (m < n)
        rng = np.random.default_rng(13)
        inst = random_k_subsets(grid(8), w=6, k=2, rng=rng, density=0.3)
        s = GridScheduler(side=4).schedule(inst)
        s.validate()
        execute(s)
