"""Schedule certificates: accept every schedule the dispatcher emits,
reject tampered ones with typed violations, and round-trip through the
signed JSON envelope."""

import json

import numpy as np
import pytest

import repro
from repro.cli import main
from repro.core.schedule import Schedule
from repro.errors import CertificationError
from repro.io import load_certificate, save_certificate, save_schedule
from repro.network import clique, cluster, grid, hypercube, line, star
from repro.staticcheck import (
    certificate_from_dict,
    certificate_to_dict,
    certify_schedule,
    verify_certificate,
)
from repro.staticcheck.certify import CHECK_NAMES
from repro.workloads import random_k_subsets

NETWORKS = {
    "clique": clique(12),
    "line": line(16),
    "grid": grid(5),
    "hypercube": hypercube(4),
    "cluster": cluster(4, 4),
    "star": star(4, 5),
}


def build(name, seed, w=None, k=2):
    net = NETWORKS[name]
    rng = np.random.default_rng(seed)
    if w is None:
        w = max(2, net.n // 2)
    inst = random_k_subsets(net, w, k, rng)
    return inst, repro.schedule(inst, rng=np.random.default_rng(seed + 1))


# ---------------------------------------------------------------------- #
# acceptance across topologies
# ---------------------------------------------------------------------- #


@pytest.mark.parametrize("name", sorted(NETWORKS))
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_dispatcher_schedules_certify(name, seed):
    _, sched = build(name, seed)
    cert = certify_schedule(sched)
    assert cert.ok
    assert cert.failures() == ()
    assert [c.name for c in cert.checks] == list(CHECK_NAMES)
    assert cert.makespan == sched.makespan
    assert verify_certificate(cert)


@pytest.mark.parametrize("algo", ["greedy", "sequential", "tsp-order"])
def test_baseline_algorithms_certify(algo):
    net = clique(10)
    inst = random_k_subsets(net, 6, 2, np.random.default_rng(9))
    sched = repro.schedule(inst, algo=algo, rng=np.random.default_rng(10))
    assert certify_schedule(sched).ok


def test_certificate_records_context():
    _, sched = build("clique", 4)
    cert = certify_schedule(sched)
    assert cert.topology == "clique"
    assert cert.transactions == len(sched.instance.transactions)
    assert cert.lower_bound <= cert.makespan
    assert cert.signature
    assert "OK" in cert.render()


def test_reference_and_vectorized_kernels_agree():
    _, sched = build("clique", 12)
    ref = certify_schedule(sched, kernel="reference")
    vec = certify_schedule(sched, kernel="vectorized")
    assert ref.ok and vec.ok
    assert ref.signature == vec.signature


# ---------------------------------------------------------------------- #
# rejection of tampered schedules
# ---------------------------------------------------------------------- #


def conflicting_pair(inst):
    """Two transactions at distinct nodes sharing an object."""
    for obj in inst.objects:
        users = inst.users(obj)
        for a in users:
            for b in users:
                if a.tid < b.tid and a.node != b.node:
                    return a.tid, b.tid
    raise AssertionError("instance has no usable conflict pair")


def test_mutated_schedule_rejected_strict():
    inst, sched = build("clique", 5)
    a, b = conflicting_pair(inst)
    times = dict(sched.commit_times)
    times[b] = times[a]  # two conflicting commits collide
    broken = Schedule(inst, times, meta=sched.meta)
    with pytest.raises(CertificationError) as exc:
        certify_schedule(broken)
    assert "conflict_separation" in exc.value.failures
    assert set(exc.value.failures) <= set(CHECK_NAMES)


def test_mutated_schedule_nonstrict_reports_failures():
    inst, sched = build("line", 6)
    a, b = conflicting_pair(inst)
    times = dict(sched.commit_times)
    times[b] = times[a]
    cert = certify_schedule(Schedule(inst, times, meta=sched.meta),
                            strict=False)
    assert not cert.ok
    assert "single_copy" in cert.failures()
    assert "REJECTED" in cert.render()


def test_infeasible_itinerary_rejected():
    inst, sched = build("line", 7)
    victim = None
    for obj in inst.objects:
        for t in inst.users(obj):
            if inst.network.dist(inst.home(obj), t.node) >= 2:
                victim = t.tid
                break
        if victim is not None:
            break
    assert victim is not None
    times = dict(sched.commit_times)
    times[victim] = 1  # object cannot reach the node in one step
    cert = certify_schedule(Schedule(inst, times, meta=sched.meta),
                            strict=False)
    assert "itinerary_feasibility" in cert.failures()


# ---------------------------------------------------------------------- #
# signatures and persistence
# ---------------------------------------------------------------------- #


def test_dict_roundtrip_preserves_certificate():
    _, sched = build("grid", 8)
    cert = certify_schedule(sched)
    clone = certificate_from_dict(certificate_to_dict(cert))
    assert clone == cert
    assert verify_certificate(certificate_to_dict(clone))


def test_tampered_payload_fails_verification():
    _, sched = build("star", 9)
    payload = certificate_to_dict(certify_schedule(sched))
    payload["makespan"] = payload["makespan"] + 1
    assert not verify_certificate(payload)


def test_tampered_check_fails_verification():
    _, sched = build("cluster", 10)
    payload = certificate_to_dict(certify_schedule(sched))
    payload["checks"][0]["passed"] = not payload["checks"][0]["passed"]
    assert not verify_certificate(payload)


def test_save_load_certificate(tmp_path):
    _, sched = build("hypercube", 11)
    cert = certify_schedule(sched)
    path = tmp_path / "cert.json"
    save_certificate(cert, path)
    envelope = json.loads(path.read_text())
    assert envelope["kind"] == "certificate"
    loaded = load_certificate(path)
    assert loaded == cert
    assert verify_certificate(loaded)


# ---------------------------------------------------------------------- #
# CLI integration
# ---------------------------------------------------------------------- #


def test_cli_validate_emits_certificate(tmp_path, capsys):
    _, sched = build("clique", 13)
    sched_path = tmp_path / "sched.json"
    save_schedule(sched, sched_path)
    cert_path = tmp_path / "cert.json"
    json_path = tmp_path / "validation.json"
    code = main([
        "validate", str(sched_path),
        "--certificate", str(cert_path), "--json", str(json_path),
    ])
    assert code == 0
    assert "certificate: OK" in capsys.readouterr().out
    loaded = load_certificate(cert_path)
    assert loaded.ok
    assert verify_certificate(loaded)
    body = json.loads(json_path.read_text())["body"]
    assert body["certificate"]["ok"] is True


def test_cli_schedule_certify_flag(tmp_path, capsys):
    cert_path = tmp_path / "cert.json"
    code = main([
        "schedule", "--topology", "line", "--size", "12", "--objects", "8",
        "--seed", "4", "--certify", "--certificate", str(cert_path),
    ])
    assert code == 0
    assert "certificate: OK" in capsys.readouterr().out
    assert load_certificate(cert_path).ok
