"""Tests for JSON serialization round trips."""

import numpy as np
import pytest

from repro.core import GreedyScheduler, resolve_scheduler
from repro.core.dispatch import schedule
from repro.errors import ReproError
from repro.io import (
    instance_from_dict,
    instance_to_dict,
    load_instance,
    load_schedule,
    network_from_dict,
    network_to_dict,
    save_instance,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.network import cluster, grid, line, star
from repro.workloads import random_k_subsets


class TestNetworkRoundTrip:
    @pytest.mark.parametrize(
        "net",
        [line(8), grid(4), cluster(2, 3), star(3, 4)],
        ids=lambda n: n.topology.name,
    )
    def test_structure_preserved(self, net):
        back = network_from_dict(network_to_dict(net))
        assert back.n == net.n
        assert list(back.edges()) == list(net.edges())
        assert back.topology.name == net.topology.name

    def test_topology_params_survive_including_tuples(self):
        net = cluster(3, 4, gamma=6)
        back = network_from_dict(network_to_dict(net))
        assert back.topology.require("clusters") == net.topology.require(
            "clusters"
        )
        assert back.topology.require("gamma") == 6

    def test_dispatch_works_after_round_trip(self):
        rng = np.random.default_rng(0)
        net = network_from_dict(network_to_dict(star(3, 5)))
        inst = random_k_subsets(net, w=4, k=2, rng=rng)
        assert resolve_scheduler(
            topology=inst.network.topology.name
        ).name == "star"


class TestInstanceRoundTrip:
    def test_full_round_trip(self):
        rng = np.random.default_rng(1)
        inst = random_k_subsets(grid(4), w=4, k=2, rng=rng)
        back = instance_from_dict(instance_to_dict(inst))
        assert back.m == inst.m
        assert back.object_homes == inst.object_homes
        for a, b in zip(inst.transactions, back.transactions):
            assert (a.tid, a.node, a.objects) == (b.tid, b.node, b.objects)

    def test_revalidation_on_load(self):
        rng = np.random.default_rng(2)
        inst = random_k_subsets(line(6), w=3, k=2, rng=rng)
        data = instance_to_dict(inst)
        data["transactions"][0]["node"] = 99  # corrupt
        from repro.errors import InstanceError

        with pytest.raises(InstanceError):
            instance_from_dict(data)


class TestScheduleRoundTrip:
    def test_commit_times_and_meta_survive(self):
        rng = np.random.default_rng(3)
        inst = random_k_subsets(line(8), w=3, k=2, rng=rng)
        s = GreedyScheduler().schedule(inst)
        back = schedule_from_dict(schedule_to_dict(s))
        assert back.commit_times == s.commit_times
        assert back.meta["scheduler"] == "greedy"
        back.validate()

    def test_makespan_preserved(self):
        rng = np.random.default_rng(4)
        inst = random_k_subsets(grid(4), w=3, k=2, rng=rng)
        s = schedule(inst, rng=rng)
        assert schedule_from_dict(schedule_to_dict(s)).makespan == s.makespan


class TestFiles:
    def test_save_load_instance(self, tmp_path):
        rng = np.random.default_rng(5)
        inst = random_k_subsets(line(8), w=3, k=2, rng=rng)
        path = tmp_path / "inst.json"
        save_instance(inst, path)
        assert load_instance(path).m == inst.m

    def test_save_load_schedule(self, tmp_path):
        rng = np.random.default_rng(6)
        inst = random_k_subsets(line(8), w=3, k=2, rng=rng)
        s = GreedyScheduler().schedule(inst)
        path = tmp_path / "sched.json"
        save_schedule(s, path)
        assert load_schedule(path).commit_times == s.commit_times

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(ReproError, match="cannot load"):
            load_instance(tmp_path / "nope.json")

    def test_load_garbage_raises(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text("{not json")
        with pytest.raises(ReproError):
            load_schedule(p)


class TestExtensionRoundTrips:
    def test_rw_instance_round_trip(self, tmp_path):
        from repro.io import load_rw_instance, save_rw_instance
        from repro.replication import random_rw_instance
        from repro.network import grid

        rng = np.random.default_rng(7)
        inst = random_rw_instance(grid(4), w=4, k=2,
                                  write_fraction=0.4, rng=rng)
        path = tmp_path / "rw.json"
        save_rw_instance(inst, path)
        back = load_rw_instance(path)
        assert back.m == inst.m
        for a, b in zip(inst.transactions, back.transactions):
            assert (a.tid, a.node, a.reads, a.writes) == (
                b.tid, b.node, b.reads, b.writes
            )
        assert back.object_homes == inst.object_homes

    def test_rw_round_trip_schedules_identically(self, tmp_path):
        from repro.io import rw_instance_from_dict, rw_instance_to_dict
        from repro.replication import (
            ReplicatedGreedyScheduler,
            random_rw_instance,
        )
        from repro.network import clique

        rng = np.random.default_rng(8)
        inst = random_rw_instance(clique(10), w=4, k=2,
                                  write_fraction=0.3, rng=rng)
        back = rw_instance_from_dict(rw_instance_to_dict(inst))
        a = ReplicatedGreedyScheduler().schedule(inst)
        b = ReplicatedGreedyScheduler().schedule(back)
        assert a.commit_times == b.commit_times

    def test_online_workload_round_trip(self, tmp_path):
        from repro.io import load_online_workload, save_online_workload
        from repro.online import poisson_workload, run_online
        from repro.network import clique

        rng = np.random.default_rng(9)
        wl = poisson_workload(clique(12), w=4, k=2, rate=0.5, count=8,
                              rng=rng)
        path = tmp_path / "wl.json"
        save_online_workload(wl, path)
        back = load_online_workload(path)
        assert back.m == wl.m
        assert [a.release for a in back.arrivals] == [
            a.release for a in wl.arrivals
        ]
        # the reloaded stream schedules identically
        assert (
            run_online(back).schedule.commit_times
            == run_online(wl).schedule.commit_times
        )

    def test_corrupt_rw_payload_rejected(self, tmp_path):
        from repro.errors import ReproError
        from repro.io import load_rw_instance

        p = tmp_path / "bad.json"
        p.write_text("[1, 2")
        with pytest.raises(ReproError):
            load_rw_instance(p)


class TestFaultPlanRoundTrip:
    def make_plan(self, net=None):
        from repro.faults import (
            DelaySpike,
            FaultPlan,
            LinkFailure,
            NodeCrash,
            ObjectStall,
        )

        return FaultPlan(
            [
                LinkFailure(0, 1, 2, 9),
                LinkFailure(1, 2, 5, None),  # permanent
                NodeCrash(3, 4),
                ObjectStall(7, 0, 6),
                DelaySpike(2, 3, 1, 8, 2.5),
            ],
            network=net,
        )

    def test_dict_round_trip_preserves_events(self):
        from repro.io import fault_plan_from_json, fault_plan_to_json

        plan = self.make_plan()
        data = fault_plan_to_json(plan)
        back = fault_plan_from_json(data)
        assert back.events == plan.events
        assert fault_plan_to_json(back) == data

    def test_file_round_trip_with_network_validation(self, tmp_path):
        from repro.io import load_fault_plan, save_fault_plan

        net = line(6)
        plan = self.make_plan(net)
        path = tmp_path / "plan.json"
        save_fault_plan(plan, path)
        back = load_fault_plan(path, network=net)
        assert back.events == plan.events

    def test_random_plan_round_trips(self, tmp_path):
        from repro.faults import random_fault_plan
        from repro.io import load_fault_plan, save_fault_plan

        net = grid(4)
        plan = random_fault_plan(
            net, 60, np.random.default_rng(5), intensity=2.0,
            objects=range(8), crash_rate=0.2,
        )
        path = tmp_path / "plan.json"
        save_fault_plan(plan, path)
        assert load_fault_plan(path, network=net).events == plan.events

    def test_unknown_kind_rejected(self):
        from repro.io import fault_plan_from_json

        with pytest.raises(ReproError, match="unknown fault event kind"):
            fault_plan_from_json({"events": [{"kind": "meteor_strike"}]})

    def test_load_validates_against_network(self, tmp_path):
        from repro.errors import FaultError
        from repro.faults import FaultPlan, NodeCrash
        from repro.io import load_fault_plan, save_fault_plan

        plan = FaultPlan([NodeCrash(40, 2)])
        path = tmp_path / "plan.json"
        save_fault_plan(plan, path)
        assert len(load_fault_plan(path)) == 1  # unvalidated load is fine
        with pytest.raises(FaultError, match="unknown node"):
            load_fault_plan(path, network=line(6))
