"""Unit tests for the replication/versioned-reads extension."""

import numpy as np
import pytest

from repro.core import GreedyScheduler
from repro.errors import InfeasibleScheduleError, InstanceError
from repro.network import clique, line
from repro.replication import (
    ReplicatedGreedyScheduler,
    ReplicatedInstance,
    ReplicatedSchedule,
    RWTransaction,
    build_rw_dependency,
    random_rw_instance,
)
from repro.workloads import root_rng


def rw(tid, node, reads=(), writes=()):
    return RWTransaction(tid, node, reads, writes)


class TestModel:
    def test_reads_exclude_writes(self):
        t = rw(0, 0, reads=[1, 2], writes=[2, 3])
        assert t.reads == frozenset({1})
        assert t.writes == frozenset({2, 3})
        assert t.objects == frozenset({1, 2, 3})

    def test_rejects_empty_access(self):
        with pytest.raises(InstanceError):
            rw(0, 0)

    def test_instance_indexes(self):
        net = clique(4)
        txns = [
            rw(0, 0, writes=[0]),
            rw(1, 1, reads=[0]),
            rw(2, 2, reads=[0], writes=[1]),
        ]
        inst = ReplicatedInstance(net, txns, {0: 0, 1: 2})
        assert [t.tid for t in inst.writers(0)] == [0]
        assert {t.tid for t in inst.readers(0)} == {1, 2}
        assert [t.tid for t in inst.writers(1)] == [2]

    def test_validation_mirrors_base_model(self):
        net = clique(2)
        with pytest.raises(InstanceError, match="two transactions"):
            ReplicatedInstance(
                net, [rw(0, 0, writes=[0]), rw(1, 0, reads=[0])], {0: 0}
            )
        with pytest.raises(InstanceError, match="no home"):
            ReplicatedInstance(net, [rw(0, 0, writes=[5])], {})

    def test_as_single_copy_preserves_accesses(self):
        net = clique(3)
        txns = [rw(0, 0, reads=[0], writes=[1]), rw(1, 1, reads=[1])]
        inst = ReplicatedInstance(net, txns, {0: 0, 1: 0})
        base = inst.as_single_copy()
        assert base.transaction(0).objects == frozenset({0, 1})
        assert base.transaction(1).objects == frozenset({1})


class TestFeasibility:
    def make_line(self):
        # writer at node 0, reader at node 4, second writer at node 2
        net = line(5)
        txns = [
            rw(0, 0, writes=[0]),
            rw(1, 4, reads=[0]),
            rw(2, 2, writes=[0]),
        ]
        return ReplicatedInstance(net, txns, {0: 0})

    def test_master_chain_enforced(self):
        inst = self.make_line()
        # writer 0 at t=1, writer 2 at t=2: master needs 2 steps 0 -> 2
        s = ReplicatedSchedule(inst, {0: 1, 2: 2, 1: 9})
        with pytest.raises(InfeasibleScheduleError, match="master"):
            s.validate()
        ReplicatedSchedule(inst, {0: 1, 2: 3, 1: 9}).validate()

    def test_replica_from_latest_prior_writer(self):
        inst = self.make_line()
        # reader at t=5 reads writer-2's version (t=3, node 2, dist 2) -> ok
        ReplicatedSchedule(inst, {0: 1, 2: 3, 1: 5}).validate()
        # reader at t=4 still reads writer-2's version but 4-3 < dist 2
        with pytest.raises(InfeasibleScheduleError, match="replica"):
            ReplicatedSchedule(inst, {0: 1, 2: 3, 1: 4}).validate()

    def test_reader_between_writers_reads_older_version(self):
        inst = self.make_line()
        # reader commits at t=4 before writer 2 (t=9): source is writer 0
        # at node 0, dist 4, gap 3 -> infeasible; gap 4 -> feasible
        with pytest.raises(InfeasibleScheduleError):
            ReplicatedSchedule(inst, {0: 1, 1: 4, 2: 9}).validate()
        ReplicatedSchedule(inst, {0: 1, 1: 5, 2: 9}).validate()

    def test_version_zero_read_from_home(self):
        net = line(4)
        inst = ReplicatedInstance(net, [rw(0, 3, reads=[0])], {0: 0})
        with pytest.raises(InfeasibleScheduleError):
            ReplicatedSchedule(inst, {0: 2}).validate()
        ReplicatedSchedule(inst, {0: 3}).validate()

    def test_reader_writer_tie_rejected(self):
        inst = self.make_line()
        s = ReplicatedSchedule(inst, {0: 1, 2: 3, 1: 3})
        with pytest.raises(InfeasibleScheduleError, match="share commit"):
            s.validate()

    def test_concurrent_readers_allowed(self):
        net = clique(4)
        txns = [rw(i, i, reads=[0]) for i in range(4)]
        inst = ReplicatedInstance(net, txns, {0: 0})
        # all read version 0; reader at the home commits at 1, others at 1
        # need dist 1 from home -> t >= 1 works for home node only; give 2
        ReplicatedSchedule(
            inst, {0: 1, 1: 2, 2: 2, 3: 2}
        ).validate()


class TestScheduler:
    def test_dependency_thinning(self):
        net = clique(5)
        txns = [rw(i, i, reads=[0]) for i in range(4)] + [rw(4, 4, writes=[0])]
        inst = ReplicatedInstance(net, txns, {0: 0})
        g = build_rw_dependency(inst)
        # only writer-reader edges: 4, no read-read edges
        assert g.num_edges == 4

    @pytest.mark.parametrize("wf", [0.0, 0.3, 1.0])
    def test_feasible_across_write_fractions(self, wf):
        rng = root_rng(int(wf * 10))
        inst = random_rw_instance(clique(16), w=6, k=2,
                                  write_fraction=wf, rng=rng)
        s = ReplicatedGreedyScheduler().schedule(inst)
        s.validate()

    def test_read_only_workload_fully_parallel(self):
        rng = root_rng(1)
        inst = random_rw_instance(clique(12), w=4, k=2,
                                  write_fraction=0.0, rng=rng)
        s = ReplicatedGreedyScheduler().schedule(inst)
        s.validate()
        # no conflicts at all: everything commits within diameter + 1
        assert s.makespan <= 2

    def test_all_writes_matches_base_greedy_shape(self):
        rng = root_rng(2)
        inst = random_rw_instance(line(12), w=4, k=2,
                                  write_fraction=1.0, rng=rng)
        rs = ReplicatedGreedyScheduler().schedule(inst)
        bs = GreedyScheduler().schedule(inst.as_single_copy())
        rs.validate()
        bs.validate()
        # identical conflict graphs -> identical colourings up to offset
        assert rs.makespan <= bs.makespan + bs.meta["offset"] + 1

    def test_replicated_never_slower_than_single_copy(self):
        for seed in range(5):
            rng = root_rng(100 + seed)
            inst = random_rw_instance(clique(16), w=6, k=2,
                                      write_fraction=0.3, rng=rng)
            rs = ReplicatedGreedyScheduler().schedule(inst)
            bs = GreedyScheduler().schedule(inst.as_single_copy())
            assert rs.makespan <= bs.makespan + 1

    def test_communication_cost_positive_when_moving(self):
        net = line(5)
        txns = [rw(0, 0, writes=[0]), rw(1, 4, reads=[0])]
        inst = ReplicatedInstance(net, txns, {0: 0})
        s = ReplicatedSchedule(inst, {0: 1, 1: 5})
        assert s.communication_cost == 4


class TestWorkloadGenerator:
    def test_parameter_validation(self):
        rng = root_rng(3)
        with pytest.raises(InstanceError):
            random_rw_instance(clique(4), w=2, k=3, write_fraction=0.5, rng=rng)
        with pytest.raises(InstanceError):
            random_rw_instance(clique(4), w=2, k=1, write_fraction=2.0, rng=rng)

    def test_write_fraction_extremes(self):
        rng = root_rng(4)
        all_reads = random_rw_instance(clique(10), 4, 2, 0.0, rng)
        assert all(not t.writes for t in all_reads.transactions)
        all_writes = random_rw_instance(clique(10), 4, 2, 1.0, rng)
        assert all(not t.reads for t in all_writes.transactions)
