"""Unit tests for congestion analysis and asynchronous replay."""

import numpy as np
import pytest

from repro.core import GreedyScheduler, Instance, Schedule, Transaction
from repro.network import clique, line
from repro.sim import (
    asynchronous_execute,
    congestion_report,
    serialized_edge_makespan,
)
from repro.workloads import random_k_subsets


def shared_line_instance():
    """Two objects both crossing the middle edge of a line concurrently."""
    net = line(6)
    txns = [
        Transaction(0, 0, {0}),
        Transaction(1, 1, {1}),
        Transaction(2, 4, {0}),
        Transaction(3, 5, {1}),
    ]
    return Instance(net, txns, {0: 0, 1: 1})


class TestCongestionReport:
    def test_concurrent_legs_counted(self):
        inst = shared_line_instance()
        # object 0 departs node 0 at t=1, object 1 departs node 1 at t=2:
        # both occupy edge (2,3) during [3,4)
        s = Schedule(inst, {0: 1, 1: 2, 2: 5, 3: 6})
        rep = congestion_report(s)
        assert rep.peak_concurrency[(2, 3)] == 2
        assert rep.exclusive_time[(2, 3)] == 2
        assert rep.max_peak == 2

    def test_pipelined_legs_do_not_overlap(self):
        inst = shared_line_instance()
        # simultaneous departures from staggered origins pipeline one hop
        # apart and never share an edge interval
        s = Schedule(inst, {0: 1, 1: 1, 2: 5, 3: 5})
        rep = congestion_report(s)
        assert rep.max_peak == 1

    def test_disjoint_legs_capacity_one(self):
        inst = shared_line_instance()
        # serialize the two objects' trips in time
        s = Schedule(inst, {0: 1, 1: 6, 2: 5, 3: 11})
        rep = congestion_report(s)
        assert rep.max_peak == 1
        assert rep.congestion_gap <= 1.0

    def test_lower_bound_is_max_exclusive(self):
        inst = shared_line_instance()
        s = Schedule(inst, {0: 1, 1: 1, 2: 5, 3: 5})
        rep = congestion_report(s)
        assert rep.capacity1_lower_bound == max(rep.exclusive_time.values())

    def test_no_movement_no_congestion(self):
        inst = Instance(clique(2), [Transaction(0, 0, {0})], {0: 0})
        rep = congestion_report(Schedule(inst, {0: 1}))
        assert rep.max_peak == 0
        assert rep.capacity1_lower_bound == 0

    def test_serialized_upper_bound_dominates(self):
        rng = np.random.default_rng(0)
        inst = random_k_subsets(clique(16), w=5, k=2, rng=rng)
        s = GreedyScheduler().schedule(inst)
        rep = congestion_report(s)
        ub = serialized_edge_makespan(s)
        assert ub >= rep.capacity1_lower_bound
        assert ub >= s.makespan


class TestAsynchronousExecute:
    def test_phi_one_matches_asap_replay(self):
        rng = np.random.default_rng(1)
        inst = random_k_subsets(clique(12), w=4, k=2, rng=rng)
        s = GreedyScheduler().schedule(inst)
        res = asynchronous_execute(s, 1.0, np.random.default_rng(2))
        # with no jitter the replay is a (slack-compressed) valid schedule
        assert res.makespan <= s.makespan
        Schedule(inst, res.realized_commits).validate()

    @pytest.mark.parametrize("phi", [1.5, 2.0, 4.0])
    def test_inflation_bounded_by_phi(self, phi):
        rng = np.random.default_rng(3)
        inst = random_k_subsets(line(20), w=5, k=2, rng=rng)
        s = GreedyScheduler().schedule(inst)
        base = asynchronous_execute(s, 1.0, np.random.default_rng(4)).makespan
        res = asynchronous_execute(s, phi, np.random.default_rng(4))
        assert res.makespan <= phi * base + len(inst.transactions)

    def test_object_chains_preserve_order(self):
        rng = np.random.default_rng(5)
        inst = random_k_subsets(clique(10), w=3, k=2, rng=rng)
        s = GreedyScheduler().schedule(inst)
        res = asynchronous_execute(s, 3.0, np.random.default_rng(6))
        for obj in inst.objects:
            users = sorted(inst.users(obj), key=lambda t: s.time_of(t.tid))
            realized = [res.realized_commits[t.tid] for t in users]
            assert realized == sorted(realized)

    def test_rejects_phi_below_one(self):
        rng = np.random.default_rng(7)
        inst = random_k_subsets(clique(6), w=2, k=1, rng=rng)
        s = GreedyScheduler().schedule(inst)
        with pytest.raises(ValueError):
            asynchronous_execute(s, 0.5, np.random.default_rng(8))

    def test_deterministic_given_rng(self):
        rng = np.random.default_rng(9)
        inst = random_k_subsets(clique(10), w=4, k=2, rng=rng)
        s = GreedyScheduler().schedule(inst)
        a = asynchronous_execute(s, 2.0, np.random.default_rng(10))
        b = asynchronous_execute(s, 2.0, np.random.default_rng(10))
        assert a.realized_commits == b.realized_commits

    def test_same_seed_insensitive_to_object_set_order(self):
        # object ids chosen so frozenset iteration order != sorted order
        # ({1, 8, 16} iterates 8, 16, 1 under CPython's hash table);
        # the replay normalizes to sorted order, so jitter draws -- and
        # therefore every realized commit -- depend only on the seed
        from repro.core import Instance, Schedule, Transaction

        net = clique(6)
        txns = [
            Transaction(0, 0, {1, 8, 16}),
            Transaction(1, 1, {8, 16}),
            Transaction(2, 2, {1, 16}),
        ]
        homes = {1: 3, 8: 4, 16: 5}
        inst = Instance(net, txns, homes)
        s = Schedule(inst, {0: 2, 1: 4, 2: 6})
        s.validate()
        runs = [
            asynchronous_execute(s, 3.0, np.random.default_rng(11))
            for _ in range(3)
        ]
        for other in runs[1:]:
            assert other.realized_commits == runs[0].realized_commits
            assert other.makespan == runs[0].makespan
