"""Tests for the experiment suite (quick mode) -- structure and claims.

Beyond smoke-running each experiment, these check the *reproduced shape*:
bounded normalized ratios where a theorem predicts them, winner columns,
and the lower-bound experiments' gap growth.
"""

import math

import pytest

from repro.experiments import TITLES, experiment_ids, run_experiment
from repro.experiments.registry import EXPERIMENTS

SEED = 7


@pytest.fixture(scope="module")
def tables():
    return {
        eid: run_experiment(eid, seed=SEED, quick=True)
        for eid in experiment_ids()
    }


class TestRegistry:
    def test_registered_experiments(self):
        assert experiment_ids() == [
            "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10",
            "e11", "e12", "e13", "e14", "e15", "e16", "e17", "e18", "e19",
            "e20", "e21",
        ]
        assert set(EXPERIMENTS) == set(TITLES)

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("e99")

    def test_experiment_info_metadata(self):
        from repro.experiments.registry import EXPERIMENT_INFO

        assert set(EXPERIMENT_INFO) == set(EXPERIMENTS)
        for eid, info in EXPERIMENT_INFO.items():
            assert info.id == eid
            assert info.title == TITLES[eid]
            assert isinstance(info.supports_recorder, bool)
        # the instrumented runtimes' experiments must advertise support
        for eid in ("e1", "e17", "e18", "e19"):
            assert EXPERIMENT_INFO[eid].supports_recorder

    def test_normalized_run_signatures(self):
        import inspect

        from repro.experiments.registry import _MODULES

        for mod in _MODULES:
            params = list(inspect.signature(mod.run).parameters)
            assert params == ["seed", "quick", "recorder"], mod.__name__

    def test_signature_drift_fails_loudly(self):
        import types

        from repro.errors import ReproError
        from repro.experiments.registry import _validate_module

        drifted = types.ModuleType("e99_drifted")
        drifted.EXP_ID = "e99"
        drifted.TITLE = "drifted"
        drifted.SUPPORTS_RECORDER = False
        drifted.run = lambda seed=None, quick=False: None  # no recorder
        with pytest.raises(ReproError, match="drifted from the normalized"):
            _validate_module(drifted)

    def test_missing_contract_attr_fails_loudly(self):
        import types

        from repro.errors import ReproError
        from repro.experiments.registry import _validate_module

        bare = types.ModuleType("e99_bare")
        bare.EXP_ID = "e99"
        with pytest.raises(ReproError, match="missing"):
            _validate_module(bare)


class TestTablesWellFormed:
    def test_every_experiment_produces_rows(self, tables):
        for eid, table in tables.items():
            assert table.rows, f"{eid} produced no rows"
            assert table.render()

    def test_reproducible_with_same_seed(self):
        a = run_experiment("e1", seed=3, quick=True)
        b = run_experiment("e1", seed=3, quick=True)
        assert a.rows == b.rows


class TestClaims:
    def test_e1_ratio_over_k_bounded(self, tables):
        assert all(v <= 3.0 for v in tables["e1"].column("ratio_over_k"))

    def test_e2_normalized_ratio_bounded(self, tables):
        assert all(v <= 2.0 for v in tables["e2"].column("ratio_norm"))

    def test_e3_constant_factor(self, tables):
        assert all(v <= 6.0 for v in tables["e3"].column("ratio"))

    def test_e3_fig1_within_four_ell(self, tables):
        fig1 = [r for r in tables["e3"].rows if r["workload"] == "fig1"][0]
        assert fig1["makespan"] <= fig1["four_ell"]

    def test_e4_normalized_ratio_bounded(self, tables):
        vals = [
            v for v in tables["e4"].column("ratio_norm") if not math.isnan(v)
        ]
        assert vals and all(v <= 4.0 for v in vals)

    def test_e5_sigma_one_is_cheap(self, tables):
        local = [r for r in tables["e5"].rows if r["cross"] == 0.0]
        assert local
        for row in local:
            assert row["sigma"] == 1.0
            assert row["ratio_auto"] <= 1.5

    def test_e5_auto_takes_min(self, tables):
        # per trial, identical rng streams make auto exactly min(A1, A2);
        # the table aggregates means and mean-of-minima <= min-of-means,
        # so the cell-level guarantee is an inequality
        for row in tables["e5"].rows:
            assert row["mk_auto"] <= min(
                row["mk_approach1"], row["mk_approach2"]
            ) + 1e-9

    def test_e6_normalized_ratio_bounded(self, tables):
        assert all(v <= 3.0 for v in tables["e6"].column("ratio_norm"))

    @pytest.mark.parametrize("eid", ["e7", "e8"])
    def test_lower_bound_gap_grows(self, tables, eid):
        rows = tables[eid].rows
        gaps = [r["gap"] for r in rows]
        assert gaps == sorted(gaps), f"{eid}: gap must grow with s"
        assert gaps[-1] > gaps[0]

    @pytest.mark.parametrize("eid", ["e7", "e8"])
    def test_lemma10_tour_bound(self, tables, eid):
        for row in tables[eid].rows:
            assert row["max_tour"] <= row["tour_bound_5s2"]

    def test_e9_paper_beats_random_order(self, tables):
        by_topo: dict[str, dict[str, float]] = {}
        for row in tables["e9"].rows:
            by_topo.setdefault(row["topology"], {})[row["scheduler"]] = row[
                "makespan"
            ]
        for topo, per in by_topo.items():
            paper = [v for kname, v in per.items() if kname.startswith("paper:")]
            assert paper, topo
            # the paper scheduler should not be worse than the random-order
            # baseline by more than 2x anywhere (it usually wins outright)
            assert paper[0] <= 2.0 * per["random-order"] + 1

    def test_e10_has_all_four_ablations(self, tables):
        kinds = {r["ablation"] for r in tables["e10"].rows}
        assert kinds == {
            "grid-side", "cluster-ln-factor", "approach-crossover",
            "compaction",
        }

    def test_e10_compaction_never_hurts(self, tables):
        for row in tables["e10"].rows:
            if row["ablation"] == "compaction":
                assert row["ratio"] >= 1.0

    def test_e9_compaction_dominates_plain(self, tables):
        by_topo: dict[str, dict[str, float]] = {}
        for row in tables["e9"].rows:
            by_topo.setdefault(row["topology"], {})[row["scheduler"]] = row[
                "makespan"
            ]
        for topo, per in by_topo.items():
            plain = [v for k, v in per.items() if k.startswith("paper:")]
            assert per["paper+compact"] <= plain[0] + 1e-9, topo

    def test_e11_covers_all_policies(self, tables):
        assert {r["policy"] for r in tables["e11"].rows} == {
            "timestamp", "random-prio", "epoch-batch",
        }
        assert all(v >= 0 for v in tables["e11"].column("mean_response"))

    def test_e12_bounds_bracket(self, tables):
        for row in tables["e12"].rows:
            assert row["cap1_lower_bound"] <= row["cap1_upper_bound"]
            assert row["max_link_concurrency"] >= 1

    def test_e13_inflation_within_ceil_phi(self, tables):
        for row in tables["e13"].rows:
            assert row["inflation"] <= math.ceil(row["phi"]) + 0.2

    def test_e14_replication_speedup_shape(self, tables):
        rows = tables["e14"].rows
        # replication never hurts, and all-writes recovers the base model
        assert all(r["speedup"] >= 0.99 for r in rows)
        for row in rows:
            if row["write_frac"] == 1.0:
                assert abs(row["conflict_edges_ratio"] - 1.0) < 1e-9
        # read-heavier -> at least as much speedup (per topology)
        by_topo: dict[str, list] = {}
        for r in rows:
            by_topo.setdefault(r["topology"], []).append(
                (r["write_frac"], r["speedup"])
            )
        for cells in by_topo.values():
            cells.sort()
            assert cells[0][1] >= cells[-1][1] - 0.05

    def test_e15_hybrid_never_worst(self, tables):
        for row in tables["e15"].rows:
            assert row["cf_hybrid"] <= max(
                row["cf_rpc"], row["cf_migration"]
            ) + 1e-9

    def test_e16_walk_placement_never_worse_ratio(self, tables):
        by_topo: dict[str, dict[str, float]] = {}
        for row in tables["e16"].rows:
            by_topo.setdefault(row["topology"], {})[row["policy"]] = row[
                "ratio"
            ]
        for per in by_topo.values():
            assert per["walk-optimal"] <= per["random-requester"] + 0.25

    def test_e19_stability_transition(self, tables):
        rows = tables["e19"].rows
        poisson = [r for r in rows if r["stream"] == "poisson"]
        assert poisson, "e19 must sweep poisson rates"
        low = min(poisson, key=lambda r: r["rate"])
        high = max(poisson, key=lambda r: r["rate"])
        # below saturation: bounded queue, detector silent
        assert low["saturated_at"] == -1
        assert low["mean_backlog"] < high["mean_backlog"]
        # above saturation: detector trips and the service sheds
        assert high["saturated_at"] >= 0
        assert high["shed_frac"] > 0
        # faulty rows degrade gracefully: losses typed, most work commits
        for r in rows:
            if r["stream"] == "poisson+faults":
                assert r["commit_rate"] > 0.5
                assert r["saturated_at"] == -1

    def test_e21_sharded_wins_at_low_cross(self, tables):
        rows = tables["e21"].rows
        assert rows, "e21 must produce rows"
        for row in rows:
            if row["cross"] == 0.0:
                # no cross-shard work: the two-phase split degenerates
                # to per-shard greedy, exactly the baseline
                assert row["cross_ratio"] == 0.0
                assert row["mk_sharded"] == row["mk_cluster"]
            elif row["cross"] <= 0.1:
                # the headline claim: sharded beats plain cluster-greedy
                # at low nonzero cross-shard ratios
                assert row["mk_sharded"] < row["mk_cluster"]
                assert row["winner"] == "sharded"
            assert row["mk_sharded"] >= row["lower_bound"]


class TestRegistryDrift:
    def test_current_registry_is_clean(self):
        from repro.experiments.registry import _check_registry_drift

        _check_registry_drift()  # must not raise on a consistent tree

    def test_unregistered_file_detected(self):
        from repro.experiments.registry import _detect_drift

        unreg, phantom = _detect_drift(
            ["e1_clique.py", "e99_rogue.py"], {"e1"}
        )
        assert unreg == ["e99"]
        assert phantom == []

    def test_phantom_registration_detected(self):
        from repro.experiments.registry import _detect_drift

        unreg, phantom = _detect_drift(["e1_clique.py"], {"e1", "e7"})
        assert unreg == []
        assert phantom == ["e7"]

    def test_non_experiment_files_ignored(self):
        from repro.experiments.registry import _detect_drift

        unreg, phantom = _detect_drift(
            ["registry.py", "common.py", "e2_hypercube.py"], {"e2"}
        )
        assert unreg == [] and phantom == []
