"""Unit tests for the shared experiment helpers."""

import numpy as np

from repro.core import GreedyScheduler
from repro.experiments.common import Compacted, mean_evaluation, trial_ratios
from repro.network import clique
from repro.workloads import random_k_subsets


class TestTrialRatios:
    def test_aggregates_expected_keys(self):
        net = clique(12)
        cell = trial_ratios(
            "tst",
            seed=1,
            config_key=("a", 2),
            trials=3,
            make_instance=lambda rng: random_k_subsets(net, 4, 2, rng),
            scheduler=GreedyScheduler(),
        )
        assert set(cell) == {
            "makespan", "lower_bound", "ratio", "ratio_ci95", "comm_cost",
        }
        assert cell["ratio"] >= 1.0
        assert cell["makespan"] >= cell["lower_bound"]

    def test_deterministic_per_seed_and_key(self):
        net = clique(10)
        kwargs = dict(
            trials=2,
            make_instance=lambda rng: random_k_subsets(net, 3, 2, rng),
            scheduler=GreedyScheduler(),
        )
        a = trial_ratios("tst", 5, ("x",), **kwargs)
        b = trial_ratios("tst", 5, ("x",), **kwargs)
        c = trial_ratios("tst", 5, ("y",), **kwargs)
        assert a == b
        assert a != c


class TestMeanEvaluation:
    def test_shared_lower_bound(self):
        rng = np.random.default_rng(0)
        inst = random_k_subsets(clique(10), 4, 2, rng)
        evals = mean_evaluation(
            [GreedyScheduler(), Compacted(GreedyScheduler())], inst, rng
        )
        assert len(evals) == 2
        assert evals[0].lower_bound == evals[1].lower_bound


class TestCompactedWrapper:
    def test_name_and_dominance(self):
        rng = np.random.default_rng(1)
        inst = random_k_subsets(clique(16), 5, 2, rng)
        plain = GreedyScheduler()
        wrapped = Compacted(GreedyScheduler())
        assert wrapped.name == "greedy+compact"
        s_plain = plain.schedule(inst)
        s_wrapped = wrapped.schedule(inst)
        s_wrapped.validate()
        assert s_wrapped.makespan <= s_plain.makespan
