"""Property-based tests (hypothesis) for admission and service accounting.

The robustness contract is conservation: nothing the stream releases is
ever silently dropped.  Two layers are exercised under arbitrary drawn
policies:

* :class:`repro.online.AdmissionControl` inside :func:`run_resilient`:
  ``committed + lost + shed == released`` for any watermark and any
  defer/shed interleaving (strict runs either satisfy the identity or
  raise :class:`OverloadError` -- never a partial, silent result);
* the :class:`repro.service.SchedulingService` loop: ``committed + shed
  + expired + lost + final_backlog == released`` for any drawn window
  length, watermarks, policy, deadline, and rate -- including runs that
  saturate and flip into shed mode mid-stream.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OverloadError
from repro.network import clique, grid, line
from repro.online import AdmissionControl, poisson_workload, run_resilient
from repro.service import ServiceConfig, run_service
from repro.workloads import PoissonStream, root_rng, spawn

_NETS = {"clique": clique(12), "grid": grid(4), "line": line(9)}


@st.composite
def admission_cases(draw):
    topo = draw(st.sampled_from(sorted(_NETS)))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    count = draw(st.integers(min_value=2, max_value=9))
    high_water = draw(st.integers(min_value=1, max_value=10))
    policy = draw(st.sampled_from(["defer", "shed", "strict"]))
    return topo, seed, count, high_water, policy


@given(admission_cases())
@settings(max_examples=40, deadline=None)
def test_admission_accounting_identity(case):
    topo, seed, count, high_water, policy = case
    net = _NETS[topo]
    wl = poisson_workload(net, w=8, k=2, rate=1.0, count=count,
                          rng=root_rng(seed))
    admission = AdmissionControl(high_water, policy)
    try:
        res = run_resilient(wl, admission=admission)
    except OverloadError:
        assert policy == "strict"  # only strict may refuse by raising
        return
    rep = res.report
    assert rep.committed + len(rep.lost) + len(rep.shed) == rep.released
    assert rep.released == wl.m
    # empty plan: nothing is ever *lost*, only shed
    assert not rep.lost
    # shed transactions never appear among the commits
    shed_tids = {tid for tid, _ in rep.shed}
    assert shed_tids.isdisjoint(res.commits)


@st.composite
def service_cases(draw):
    topo = draw(st.sampled_from(sorted(_NETS)))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rate = draw(st.sampled_from([0.3, 0.8, 2.0]))
    window = draw(st.integers(min_value=2, max_value=12))
    high_water = draw(st.integers(min_value=2, max_value=24))
    policy = draw(st.sampled_from(["defer", "shed"]))
    deadline = draw(st.sampled_from([None, 25, 60]))
    windows = draw(st.integers(min_value=5, max_value=20))
    return topo, seed, rate, window, high_water, policy, deadline, windows


@given(service_cases())
@settings(max_examples=25, deadline=None)
def test_service_accounting_identity(case):
    topo, seed, rate, window, high_water, policy, deadline, windows = case
    net = _NETS[topo]
    stream = PoissonStream(net, w=8, k=2, rate=rate,
                           rng=spawn(seed, "prop", topo))
    cfg = ServiceConfig(window=window, high_water=high_water, admission=policy,
                        deadline=deadline)
    rep = run_service(stream, windows=windows, config=cfg)
    assert rep.accounted
    assert rep.windows == windows
    assert rep.admitted <= rep.released
    assert len(rep.backlog_curve) == windows
    assert rep.peak_backlog == max(rep.backlog_curve, default=0)
