"""Demo: true approximation ratios on tiny instances.

For up to ~10 transactions the library can compute the *exact* optimum
(branch and bound over commit orders), so the approximation ratio needs
no lower-bound proxy.  This demo draws tiny clique and line instances and
prints, side by side: the certified lower bound, the true optimum, the
greedy schedule, and its compacted version -- showing how much of the
usual "ratio" is lower-bound slack rather than scheduler slack.

Run:  python examples/optimal_vs_greedy.py
"""

from __future__ import annotations

from repro.analysis import Table
from repro.bounds import makespan_lower_bound, optimal_schedule
from repro.core import GreedyScheduler, compact_schedule
from repro.network import clique, line
from repro.workloads import random_k_subsets, root_rng


def main() -> None:
    table = Table(
        "tiny instances: certified LB vs true OPT vs greedy",
        columns=["net", "trial", "lb", "opt", "greedy", "compacted",
                 "true_ratio", "lb_ratio"],
    )
    for name, net in (("clique8", clique(8)), ("line10", line(10))):
        for trial in range(4):
            rng = root_rng(hash((name, trial)) % 2**16)
            inst = random_k_subsets(net, w=4, k=2, rng=rng)
            lb = makespan_lower_bound(inst)
            opt = optimal_schedule(inst).makespan
            greedy = GreedyScheduler().schedule(inst)
            comp = compact_schedule(greedy).makespan
            table.add(
                net=name,
                trial=trial,
                lb=lb,
                opt=opt,
                greedy=greedy.makespan,
                compacted=comp,
                true_ratio=round(comp / opt, 2),
                lb_ratio=round(comp / lb, 2),
            )
    print(table.render())
    print("\ntrue_ratio (vs OPT) is what the theorems bound; lb_ratio is")
    print("what experiments must report at scale (OPT is NP-hard), an")
    print("upper bound on true_ratio.  The gap between the two columns is")
    print("lower-bound slack, not scheduler slack.")


if __name__ == "__main__":
    main()
