"""Scenario: a read-mostly workload under versioned reads (§1.2).

A metadata service: most transactions only read the shared catalog
objects; a few update them.  Under the base data-flow model the single
master copy serializes even the readers; under the versioned-read model
(replication extension) readers receive shipped snapshots and only
writer-involved conflicts remain.  The sweep shows the speedup collapsing
to 1x as the write fraction approaches one -- where the extension
coincides with the paper's model exactly.

Run:  python examples/replicated_reads.py
"""

from __future__ import annotations

from repro.analysis import Table
from repro.core import GreedyScheduler
from repro.network import grid
from repro.replication import (
    ReplicatedGreedyScheduler,
    build_rw_dependency,
    random_rw_instance,
)
from repro.workloads import root_rng


def main() -> None:
    net = grid(8)
    print("read-mostly catalog service on an 8x8 mesh, 16 objects, k=2")
    table = Table(
        "write-fraction sweep",
        columns=["write_frac", "single_copy", "versioned", "speedup",
                 "conflict_edges"],
    )
    for wf in (0.0, 0.05, 0.2, 0.5, 1.0):
        rng = root_rng(int(wf * 100))
        inst = random_rw_instance(net, w=16, k=2, write_fraction=wf, rng=rng)
        versioned = ReplicatedGreedyScheduler().schedule(inst)
        versioned.validate()
        base = GreedyScheduler().schedule(inst.as_single_copy())
        base.validate()
        table.add(
            write_frac=wf,
            single_copy=base.makespan,
            versioned=versioned.makespan,
            speedup=round(base.makespan / versioned.makespan, 2),
            conflict_edges=build_rw_dependency(inst).num_edges,
        )
    print(table.render())
    print("\nRead-read sharing is conflict-free under versioning, so the")
    print("dependency graph thins out and the greedy colouring collapses.")


if __name__ == "__main__":
    main()
