"""Scenario: a hypercube supercomputer interconnect.

Hypercubes and butterflies are classic supercomputer topologies (§3.1).
This example runs a skewed (zipf) workload -- a few hot datasets touched
by most jobs -- on a 128-node hypercube, schedules it with the
diameter-scaled greedy algorithm, and verifies the O(k log n) envelope.

Run:  python examples/supercomputer_hypercube.py
"""

from __future__ import annotations

import math

from repro.bounds import makespan_lower_bound, object_report
from repro.core import DiameterScheduler
from repro.network import butterfly, hypercube
from repro.sim import execute
from repro.workloads import root_rng, zipf_k_subsets


def main() -> None:
    rng = root_rng(2017)
    for net in (hypercube(7), butterfly(4)):
        name = net.topology.name
        w = 24
        instance = zipf_k_subsets(net, w=w, k=2, rng=rng, exponent=1.3)
        report = object_report(instance)
        hottest = max(report.values(), key=lambda ob: ob.load)
        print(f"\n{name}: n={net.n}, diameter={net.diameter()}, "
              f"w={w} datasets (zipf), k=2")
        print(f"  hottest dataset used by {hottest.load} jobs, "
              f"walk in [{hottest.walk_lower}, {hottest.walk_upper}]")

        schedule = DiameterScheduler().schedule(instance)
        schedule.validate()
        trace = execute(schedule, record_commits=False)
        lb = makespan_lower_bound(instance, report)
        envelope = 2 * math.log2(net.n)  # O(k log n) with k = 2
        print(f"  makespan {schedule.makespan} (lower bound {lb}, "
              f"ratio <= {schedule.makespan / lb:.2f}, "
              f"k*log2(n) = {envelope:.1f})")
        print(f"  communication {trace.total_distance} hops across "
              f"{len(trace.edge_traffic)} links")


if __name__ == "__main__":
    main()
