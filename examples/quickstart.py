"""Quickstart: schedule a batch of transactions on a clique.

Builds a 32-node complete graph where every node hosts one transaction
requesting k = 2 of 16 mobile objects, computes the Theorem 1 greedy
schedule, verifies it end-to-end in the synchronous simulator, and
compares the makespan against the certified lower bound.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import repro
from repro.bounds import makespan_lower_bound
from repro.network import clique
from repro.sim import execute
from repro.workloads import random_k_subsets, root_rng


def main() -> None:
    rng = root_rng(42)

    # 1. the communication graph: a 32-node clique (e.g. one rack switch)
    net = clique(32)

    # 2. the workload: one transaction per node, each using 2 of 16 objects
    instance = random_k_subsets(net, w=16, k=2, rng=rng)
    print(f"instance: {instance}")
    print(f"heaviest object is requested by {instance.max_load} transactions")

    # 3. schedule with the topology-appropriate algorithm (Theorem 1 greedy)
    schedule = repro.schedule(instance, rng=rng)
    schedule.validate()  # static feasibility: every object leg fits

    # 4. execute hop-by-hop in the synchronous data-flow simulator
    trace = execute(schedule)

    # 5. compare against the certified lower bound
    lb = makespan_lower_bound(instance)
    print(f"makespan            : {schedule.makespan} time steps")
    print(f"certified lower bnd : {lb}")
    print(f"approximation ratio : <= {schedule.makespan / lb:.2f} "
          f"(Theorem 1 promises O(k) = O(2))")
    print(f"communication cost  : {trace.total_distance} hops")
    print(f"peak objects in flight: {trace.max_in_flight}")

    # 6. inspect one object's itinerary
    hot = max(instance.objects, key=instance.load)
    visits = schedule.itinerary(hot)
    route = " -> ".join(f"n{v.node}@t{v.time}" for v in visits)
    print(f"hottest object {hot} itinerary: {route}")


if __name__ == "__main__":
    main()
