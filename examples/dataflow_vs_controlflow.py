"""Scenario: should the data move, or the computation? (§1.2, [27])

The same batch executed under the paper's data-flow model (objects travel
between transactions) and the control-flow model (objects stay home;
transactions RPC or migrate to them), across a sweep of transaction
footprint k.  At k = 1 migrating the computation to its single object is
unbeatable; as k grows, assembling objects once and handing them along
(data-flow) amortizes far better -- the trade-off Palmieri et al. [27]
study for partially-replicated TMs.

Run:  python examples/dataflow_vs_controlflow.py
"""

from __future__ import annotations

from repro.analysis import Table
from repro.controlflow import ControlFlowScheduler
from repro.core import compact_schedule, resolve_scheduler
from repro.network import grid
from repro.workloads import random_k_subsets, root_rng


def main() -> None:
    net = grid(8)
    w = 16
    table = Table(
        "data-flow vs control-flow on an 8x8 mesh (16 objects)",
        columns=["k", "data_flow", "rpc", "migration", "hybrid", "winner"],
    )
    for k in (1, 2, 3, 4):
        rng = root_rng(k)
        inst = random_k_subsets(net, w, k, rng)
        df = compact_schedule(
            resolve_scheduler(
                topology=inst.network.topology.name
            ).schedule(inst, rng)
        )
        df.validate()
        mks = {"data_flow": df.makespan}
        for mode in ("rpc", "migration", "hybrid"):
            cf = ControlFlowScheduler(mode).schedule(inst)
            cf.validate()
            mks[mode] = cf.makespan
        table.add(
            k=k,
            data_flow=mks["data_flow"],
            rpc=mks["rpc"],
            migration=mks["migration"],
            hybrid=mks["hybrid"],
            winner=min(mks, key=mks.get),
        )
    print(table.render())
    print("\nBoth executions are feasibility-checked in their own model:")
    print("object itineraries for data-flow, disjoint per-object lock")
    print("intervals for control-flow.")


if __name__ == "__main__":
    main()
