"""Scenario: a datacenter of compute clusters.

The Cluster topology (§6) abstracts racks of tightly-coupled machines
joined by a slower datacenter fabric (bridge edges of weight gamma).
This example sweeps the fraction of cross-rack transactions and shows how
the two scheduling approaches of Theorem 4 trade off: plain greedy
(Approach 1) when sharing is rack-local, randomized phases/rounds
(Algorithm 1 / Approach 2) when objects are pulled across many racks.

Run:  python examples/datacenter_cluster.py
"""

from __future__ import annotations

from repro.analysis import Table
from repro.bounds import makespan_lower_bound
from repro.core import ClusterScheduler, object_cluster_spread
from repro.network import cluster
from repro.workloads import partitioned_instance, root_rng


def main() -> None:
    alpha, beta, gamma = 8, 12, 24  # 8 racks x 12 machines, slow fabric
    net = cluster(alpha, beta, gamma=gamma)
    racks = net.topology.require("clusters")
    print(f"datacenter: {alpha} racks x {beta} machines, fabric delay {gamma}")

    table = Table(
        "cross-rack sharing sweep",
        columns=["cross", "sigma", "approach1", "approach2", "auto",
                 "winner", "lower_bound"],
    )
    for cross in (0.0, 0.1, 0.3, 0.6, 1.0):
        rng = root_rng(int(cross * 100))
        instance = partitioned_instance(
            net, racks, objects_per_group=6, k=2,
            cross_fraction=cross, rng=rng,
        )
        lb = makespan_lower_bound(instance)
        mk = {}
        for approach in (1, 2, "auto"):
            sched = ClusterScheduler(approach=approach)
            schedule = sched.schedule(instance, root_rng(99))
            schedule.validate()
            mk[approach] = schedule.makespan
        table.add(
            cross=cross,
            sigma=object_cluster_spread(instance),
            approach1=mk[1],
            approach2=mk[2],
            auto=mk["auto"],
            winner="greedy" if mk[1] <= mk[2] else "rounds",
            lower_bound=lb,
        )
    print(table.render())
    print("\nTheorem 4: 'auto' realizes the min of both approaches -- the")
    print("envelope O(min(k*beta, 40^k ln^k m)) over the sweep.")


if __name__ == "__main__":
    main()
