"""Scenario: a mesh network-on-chip (NoC) multicore.

The paper motivates the Grid topology with systems-on-chip and manycore
parts (XMOS, Intel Xeon Phi): cores are mesh nodes, cache lines are the
mobile objects.  This example schedules a random-k-subset batch on a
16x16 mesh with the Theorem 3 boustrophedon scheduler, contrasts it with
the global-serialization baseline, and uses the simulator's per-edge
traffic view to find the hottest mesh links -- the congestion question the
paper's conclusion raises as future work.

Run:  python examples/noc_multicore.py
"""

from __future__ import annotations

from repro.baselines import SequentialScheduler
from repro.bounds import makespan_lower_bound
from repro.core import GridScheduler
from repro.network import grid, grid_coords
from repro.sim import execute
from repro.workloads import random_k_subsets, root_rng


def main() -> None:
    rng = root_rng(7)
    side = 16
    net = grid(side)
    # 256 cores, 32 shared cache lines, each transaction touches 2
    instance = random_k_subsets(net, w=32, k=2, rng=rng)

    print(f"NoC: {side}x{side} mesh, {instance.m} transactions, "
          f"{instance.num_objects} cache lines, k=2")
    lb = makespan_lower_bound(instance)

    for name, sched in [
        ("grid (Thm 3, forced 4x4 subgrids)", GridScheduler(side=4)),
        ("grid (Thm 3, theory xi)", GridScheduler()),
        ("global serialization", SequentialScheduler()),
    ]:
        schedule = sched.schedule(instance, rng)
        schedule.validate()
        trace = execute(schedule, record_commits=False)
        print(f"\n{name}")
        print(f"  makespan {schedule.makespan:5d}  (lower bound {lb}, "
              f"ratio <= {schedule.makespan / lb:.2f})")
        print(f"  communication {trace.total_distance} hops, "
              f"peak in-flight {trace.max_in_flight}")
        hot = sorted(
            trace.edge_traffic.items(), key=lambda kv: -kv[1]
        )[:3]
        links = ", ".join(
            f"{grid_coords(u, side)}-{grid_coords(v, side)} x{cnt}"
            for (u, v), cnt in hot
        )
        print(f"  hottest mesh links: {links}")


if __name__ == "__main__":
    main()
