"""Scenario: an online transaction stream (§9 open question 1).

Transactions arrive over time on a cluster-of-racks datacenter.  Three
policies schedule the same stream: the timestamp Greedy contention
manager (objects always chase the oldest pending requester), a random
fixed-priority manager, and epoch batching that reruns the paper's
offline cluster scheduler on each batch.  The sweep over arrival rates
shows the reactive manager's response-time advantage and how batching
narrows the gap as contention rises.

Run:  python examples/online_stream.py
"""

from __future__ import annotations

from repro.analysis import Table
from repro.network import cluster
from repro.online import (
    poisson_workload,
    random_priority,
    run_epoch_batched,
    run_online,
)
from repro.workloads import root_rng


def main() -> None:
    net = cluster(4, 8, gamma=12)
    print(f"online stream on {net}: 28 transactions, k=2, 10 objects")
    table = Table(
        "arrival-rate sweep",
        columns=["rate", "policy", "makespan", "mean_resp", "max_resp"],
    )
    for rate in (0.1, 0.5, 2.0):
        wl = poisson_workload(
            net, w=10, k=2, rate=rate, count=28, rng=root_rng(int(rate * 10))
        )
        policies = {
            "timestamp": run_online(wl),
            "random-prio": run_online(wl, random_priority, rng=root_rng(1)),
            "epoch-batch": run_epoch_batched(wl, rng=root_rng(2)),
        }
        for name, res in policies.items():
            res.schedule.validate()
            table.add(
                rate=rate,
                policy=name,
                makespan=res.makespan,
                mean_resp=round(res.mean_response, 1),
                max_resp=res.max_response,
            )
    print(table.render())
    print("\nAll schedules are feasible and never commit before release;")
    print("the timestamp policy is the classic Greedy contention manager")
    print("adapted to mobile objects (oldest transaction always wins).")


if __name__ == "__main__":
    main()
