"""Demo: why schedules cannot track TSP tours (§8, Theorem 6).

Generates the paper's hard instances I_s on the grid-of-blocks substrate:
every object's TSP tour stays O(s^2) (Lemma 10), yet the block-serializer
objects force so much serialization that every schedule's makespan grows
strictly faster.  The demo prints, for increasing s, the maximum object
tour, the best makespan any library scheduler achieves, and the widening
gap between them.

Run:  python examples/tsp_gap_demo.py
"""

from __future__ import annotations

from repro.analysis import Table
from repro.baselines import SequentialScheduler, TSPOrderScheduler
from repro.bounds import hard_grid_instance, object_report
from repro.core import GreedyScheduler
from repro.workloads import root_rng


def main() -> None:
    table = Table(
        "TSP-tour gap on hard grid instances (two objects per transaction)",
        columns=["s", "nodes", "max_tour", "5s^2", "best_makespan", "gap"],
    )
    for s in (4, 9, 16):
        rng = root_rng(s)
        hard = hard_grid_instance(s, rng)
        inst = hard.instance
        report = object_report(inst)
        max_tour = max(ob.tour_estimate for ob in report.values())
        best = None
        for sched in (
            GreedyScheduler(),
            SequentialScheduler(),
            TSPOrderScheduler(),
        ):
            schedule = sched.schedule(inst, rng)
            schedule.validate()
            best = (
                schedule.makespan
                if best is None
                else min(best, schedule.makespan)
            )
        table.add(
            s=s,
            nodes=inst.network.n,
            max_tour=max_tour,
            **{"5s^2": 5 * s * s},
            best_makespan=best,
            gap=best / max_tour,
        )
    print(table.render())
    print("\nLemma 10 holds (max_tour <= 5 s^2); the gap column grows with")
    print("s, matching Theorem 6: no schedule can stay proportional to the")
    print("objects' TSP tour lengths on general grids/trees.")


if __name__ == "__main__":
    main()
