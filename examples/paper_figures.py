"""Regenerate the paper's six figures as ASCII.

Fig 1: line graph with n = 32 and ell = 8 (§4)
Fig 2: 16x16 grid with 4x4 subgrids + one object's path (§5)
Fig 3: 5 clusters of 6 nodes with bridge weight gamma (§6)
Fig 4: star with 8 rays of 7 nodes and its 3 segment rings (§7)
Fig 5: grid-of-blocks lower-bound substrate (§8.1)
Fig 6: tree-of-blocks lower-bound substrate (§8.2)

Run:  python examples/paper_figures.py
"""

from __future__ import annotations

from repro.core import GridScheduler
from repro.network import cluster, grid, lower_bound_grid, lower_bound_tree, star
from repro.viz import (
    render_block_graph,
    render_cluster,
    render_gantt,
    render_line_blocks,
    render_object_path,
    render_star_rings,
    render_subgrid_order,
)
from repro.workloads import random_k_subsets, root_rng


def main() -> None:
    print("=== Fig 1 (line, n=32, ell=8) " + "=" * 30)
    print(render_line_blocks(32, 8))

    print("\n=== Fig 2 (16x16 grid, 4x4 subgrids) " + "=" * 23)
    print(render_subgrid_order(16, 16, 4))
    rng = root_rng(7)
    inst = random_k_subsets(grid(16), w=16, k=2, rng=rng)
    sched = GridScheduler(side=4).schedule(inst)
    sched.validate()
    hot = max(inst.objects, key=inst.load)
    print()
    print(render_object_path(sched, hot, cols=16))

    print("\n=== Fig 3 (cluster graph, 5 cliques x 6) " + "=" * 19)
    print(render_cluster(cluster(5, 6, gamma=8)))

    print("\n=== Fig 4 (star, 8 rays x 7 nodes) " + "=" * 25)
    print(render_star_rings(star(8, 7)))

    print("\n=== Fig 5 (grid-of-blocks, s=4) " + "=" * 28)
    print(render_block_graph(lower_bound_grid(4)))

    print("\n=== Fig 6 (tree-of-blocks, s=4) " + "=" * 28)
    print(render_block_graph(lower_bound_tree(4)))

    print("\n=== bonus: schedule gantt (first 12 txns of the Fig 2 run) ===")
    tids = sorted(sched.commit_times)[:12]
    print(render_gantt(sched, tids=tids))


if __name__ == "__main__":
    main()
